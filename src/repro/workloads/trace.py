"""Instruction-trace record and replay: workloads you can put in a file.

The paper's instrument averaged everything (§2.2); the simulator can do
better.  :func:`record_trace` runs one registered workload with a
passive boundary-hook recorder attached — chaining whatever hook the
executive installed, exactly like the tracer and the paranoid monitor,
so the recorded measurement is bit-identical to an unobserved run —
and writes the measured instruction stream to a compact, versioned,
checksummed file.  :func:`register_trace` ingests such a file back as
a first-class registered workload (kind ``trace``); running it replays
the recording by re-simulating from the embedded profile and verifying
the replayed stream digest against the recorded one, byte for byte.
Replay is therefore *proved* bit-identical on every run — and if the
simulator's timing rules have changed since the recording (device
polling feeds timing back into the architectural stream, so any change
shows), the replay fails loudly with both code versions rather than
quietly measuring something else.

On-disk format (version 1, little-endian)::

    magic   b"RPRT"
    version u16
    hlen    u32         header length in bytes
    header  JSON        name, source workload, machine, seed, budget,
                        embedded MixProfile fields, stream summary
    slen    u64         stream length in bytes
    stream  bytes       per boundary: zigzag-varint(pc delta),
                        varint(cycle delta)
    sha256(stream)      32 bytes
    sha256(file prefix) 32 bytes   everything before this field

Corrupt, truncated or version-skewed files are rejected with a
:class:`TraceError` naming what is wrong before anything simulates.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, fields as dc_fields

from repro.workloads.profiles import MixProfile

#: File magic for repro trace files.
MAGIC = b"RPRT"
#: Bump when the on-disk layout changes; readers refuse other versions.
TRACE_VERSION = 1

_HEAD = struct.Struct("<4sHI")
_SLEN = struct.Struct("<Q")


class TraceError(ValueError):
    """An unreadable, corrupt or mismatching trace file."""


def _varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else (value << 1)


def _read_varint(view, offset: int):
    shift = 0
    value = 0
    while True:
        if offset >= len(view):
            raise TraceError("trace stream is truncated mid-record")
        byte = view[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


class _StreamRecorder:
    """Passive boundary hook: encodes (pc, cycles) deltas as it runs.

    Chains the previously-installed hook (the executive's measurement
    gate) and only *reads* machine state, so an attached run is
    bit-identical to an unattached one — the same contract as
    :class:`repro.cpu.itrace.InstructionTracer`.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.events = 0
        self.digest = hashlib.sha256()
        self.chunks = []
        self._prev_hook = None
        self._last_pc = 0
        self._last_cycles = 0

    def attach(self) -> None:
        self._prev_hook = self.machine.boundary_hook
        self.machine.boundary_hook = self._on_boundary

    def detach(self) -> None:
        self.machine.boundary_hook = self._prev_hook

    def _on_boundary(self, machine) -> None:
        if self._prev_hook is not None:
            self._prev_hook(machine)
        pc = machine.ebox.pc
        cycles = machine.cycles
        chunk = (_varint(_zigzag(pc - self._last_pc))
                 + _varint(cycles - self._last_cycles))
        self._last_pc = pc
        self._last_cycles = cycles
        self.chunks.append(chunk)
        self.digest.update(chunk)
        self.events += 1


class _StreamVerifier(_StreamRecorder):
    """The recorder minus byte retention: digest-only, for replay."""

    def _on_boundary(self, machine) -> None:
        if self._prev_hook is not None:
            self._prev_hook(machine)
        pc = machine.ebox.pc
        cycles = machine.cycles
        self.digest.update(_varint(_zigzag(pc - self._last_pc)))
        self.digest.update(_varint(cycles - self._last_cycles))
        self._last_pc = pc
        self._last_cycles = cycles
        self.events += 1


@dataclass(frozen=True)
class TraceHandle:
    """Everything a loaded trace file asserts about itself."""

    path: str
    name: str
    source: str              #: the workload the trace was recorded from
    machine: str
    seed: int
    instructions: int        #: the recorded measurement budget
    events: int              #: boundary records in the stream
    cycles: int
    instructions_measured: int
    histogram_sha256: str
    stream_sha256: str
    file_sha256: str
    code_version: str        #: simulator digest at record time
    profile: MixProfile      #: the profile the recorded run executed

    @property
    def description(self) -> str:
        return (f"Recorded trace of {self.source} on {self.machine} "
                f"({self.instructions} instructions, seed {self.seed})")


def _profile_doc(profile: MixProfile) -> dict:
    doc = {}
    for spec in dc_fields(profile):
        value = getattr(profile, spec.name)
        doc[spec.name] = list(value) if isinstance(value, tuple) \
            else value
    return doc


def _profile_from_doc(doc) -> MixProfile:
    names = {spec.name for spec in dc_fields(MixProfile)}
    unknown = sorted(set(doc) - names)
    if unknown:
        raise TraceError(
            f"trace header profile has unknown field(s) "
            f"{', '.join(unknown)}")
    kwargs = {name: (tuple(value) if isinstance(value, list) else value)
              for name, value in doc.items()}
    try:
        return MixProfile(**kwargs)
    except TypeError as exc:
        raise TraceError(f"trace header profile is invalid: {exc}") \
            from exc


def _measurement_digest(measurement) -> str:
    digest = hashlib.sha256()
    digest.update(measurement.histogram.nonstalled.tobytes())
    digest.update(measurement.histogram.stalled.tobytes())
    return digest.hexdigest()


def record_trace(workload: str, path, instructions: int = None,
                 seed: int = 1984, machine: str = None,
                 name: str = None):
    """Record one workload run to ``path``; returns (handle, measurement).

    The run is exactly :func:`repro.workloads.engine.run_workload`'s
    code path — registry resolution, machine adaptation, boot, measured
    window — with the stream recorder chained in, so the returned
    measurement is bit-identical to the engine's (callers may prime the
    engine memo with it).  ``name`` is the workload name the trace will
    register under when ingested (default ``trace-<source>``).
    """
    from repro.analysis.measurement import Measurement
    from repro.machines.registry import get_machine
    from repro.osim.executive import Executive
    from repro.workloads import engine as _engine
    from repro.workloads.registry import WorkloadError, find_workload

    spec = find_workload(workload)
    if spec is None:
        from repro.workloads.registry import workload_names

        raise WorkloadError(
            f"unknown workload {workload!r}; choose from "
            f"{', '.join(workload_names())}")
    if spec.trace is not None:
        raise TraceError(
            f"workload {spec.name!r} is already a recorded trace; "
            "record from a generator workload")
    if instructions is None:
        instructions = _engine.DEFAULT_INSTRUCTIONS
    machine_spec = get_machine(machine)
    spec.check_machine(machine_spec.name)
    profile = machine_spec.adapt_profile(spec.profile)
    sim = machine_spec.build()
    executive = Executive(sim, profile, seed=seed)
    executive.boot()
    recorder = _StreamRecorder(sim)
    recorder.attach()
    try:
        executive.run(instructions)
    finally:
        recorder.detach()
    measurement = Measurement.capture(spec.name, sim)

    from repro.explore.store import code_version

    trace_name = name if name is not None else f"trace-{spec.name}"
    header = {
        "name": trace_name,
        "source": spec.name,
        "machine": machine_spec.name,
        "seed": seed,
        "instructions": instructions,
        "events": recorder.events,
        "cycles": measurement.cycles,
        "instructions_measured": measurement.tracer.instructions,
        "histogram_sha256": _measurement_digest(measurement),
        "code_version": code_version(),
        "profile": _profile_doc(profile),
    }
    header_bytes = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode()
    stream = b"".join(recorder.chunks)
    prefix = (_HEAD.pack(MAGIC, TRACE_VERSION, len(header_bytes))
              + header_bytes + _SLEN.pack(len(stream)) + stream
              + recorder.digest.digest())
    file_digest = hashlib.sha256(prefix).digest()
    with open(path, "wb") as handle:
        handle.write(prefix)
        handle.write(file_digest)
    return load_trace(path), measurement


def load_trace(path) -> TraceHandle:
    """Parse and checksum a trace file (no simulation).

    Raises :class:`TraceError` for anything short of a byte-perfect
    file: wrong magic, unknown version, truncation anywhere, checksum
    mismatch, malformed header, or trailing garbage.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") \
            from exc
    if len(blob) < _HEAD.size:
        raise TraceError(f"trace file {path} is truncated "
                         f"({len(blob)} bytes; no complete header)")
    magic, version, hlen = _HEAD.unpack_from(blob)
    if magic != MAGIC:
        raise TraceError(f"{path} is not a repro trace file "
                         f"(magic {magic!r})")
    if version != TRACE_VERSION:
        raise TraceError(
            f"trace file {path} has format version {version}; this "
            f"build reads version {TRACE_VERSION} — re-record it")
    offset = _HEAD.size
    if offset + hlen + _SLEN.size > len(blob):
        raise TraceError(f"trace file {path} is truncated inside its "
                         "header")
    header_bytes = blob[offset:offset + hlen]
    offset += hlen
    (slen,) = _SLEN.unpack_from(blob, offset)
    offset += _SLEN.size
    if offset + slen + 64 > len(blob):
        raise TraceError(f"trace file {path} is truncated inside its "
                         "stream")
    if offset + slen + 64 < len(blob):
        raise TraceError(f"trace file {path} carries trailing data "
                         "after its checksum")
    stream = blob[offset:offset + slen]
    offset += slen
    stream_digest = blob[offset:offset + 32]
    file_digest = blob[offset + 32:offset + 64]
    if hashlib.sha256(blob[:offset + 32]).digest() != file_digest:
        raise TraceError(f"trace file {path} is corrupt: file "
                         "checksum mismatch")
    if hashlib.sha256(stream).digest() != stream_digest:
        raise TraceError(f"trace file {path} is corrupt: stream "
                         "digest mismatch")
    try:
        header = json.loads(header_bytes)
    except json.JSONDecodeError as exc:
        raise TraceError(
            f"trace file {path} has a malformed header: {exc}") from exc
    required = ("name", "source", "machine", "seed", "instructions",
                "events", "cycles", "instructions_measured",
                "histogram_sha256", "code_version", "profile")
    missing = [key for key in required if key not in header]
    if missing:
        raise TraceError(
            f"trace file {path} header is missing field(s) "
            f"{', '.join(missing)}")
    profile = _profile_from_doc(header["profile"])
    return TraceHandle(
        path=str(path), name=header["name"], source=header["source"],
        machine=header["machine"], seed=header["seed"],
        instructions=header["instructions"], events=header["events"],
        cycles=header["cycles"],
        instructions_measured=header["instructions_measured"],
        histogram_sha256=header["histogram_sha256"],
        stream_sha256=stream_digest.hex(),
        file_sha256=file_digest.hex(),
        code_version=header["code_version"], profile=profile)


def iter_stream(handle: TraceHandle):
    """Yield (index, pc, cycles) per recorded boundary (tooling)."""
    with open(handle.path, "rb") as fh:
        blob = fh.read()
    _magic, _version, hlen = _HEAD.unpack_from(blob)
    offset = _HEAD.size + hlen
    (slen,) = _SLEN.unpack_from(blob, offset)
    view = blob[offset + _SLEN.size:offset + _SLEN.size + slen]
    pc = 0
    cycles = 0
    position = 0
    for index in range(handle.events):
        delta, position = _read_varint(view, position)
        pc += _unzigzag(delta)
        delta, position = _read_varint(view, position)
        cycles += delta
        yield index, pc, cycles


def replay(handle: TraceHandle):
    """Re-simulate ``handle``'s run and verify it bit-identical.

    Returns the replayed :class:`~repro.analysis.measurement
    .Measurement`.  The replay executes the embedded profile on the
    recorded machine/seed/budget with a digest-only verifier hook; any
    divergence — event count, stream bytes, cycle total, histogram —
    raises :class:`TraceError` carrying both code versions, because
    the usual cause is a simulator change since the recording.
    """
    from repro.analysis.measurement import Measurement
    from repro.machines.registry import get_machine
    from repro.osim.executive import Executive

    machine_spec = get_machine(handle.machine)
    sim = machine_spec.build()
    executive = Executive(sim, handle.profile, seed=handle.seed)
    executive.boot()
    verifier = _StreamVerifier(sim)
    verifier.attach()
    try:
        executive.run(handle.instructions)
    finally:
        verifier.detach()
    measurement = Measurement.capture(handle.name, sim)

    from repro.explore.store import code_version

    problems = []
    if verifier.events != handle.events:
        problems.append(f"events {verifier.events} != recorded "
                        f"{handle.events}")
    if verifier.digest.hexdigest() != handle.stream_sha256:
        problems.append("instruction stream digest mismatch")
    if measurement.cycles != handle.cycles:
        problems.append(f"cycles {measurement.cycles} != recorded "
                        f"{handle.cycles}")
    if _measurement_digest(measurement) != handle.histogram_sha256:
        problems.append("histogram digest mismatch")
    if problems:
        raise TraceError(
            f"replay of trace {handle.name!r} diverged from its "
            f"recording: {'; '.join(problems)}.  The recording was "
            f"made at code version {handle.code_version}, this build "
            f"is {code_version()}; if the simulator changed, "
            f"re-record the trace")
    return measurement


def register_trace(path, name: str = None):
    """Ingest a trace file as a registered workload (idempotent).

    Re-ingesting the same file under the same name returns the
    existing registration; a *different* trace under an occupied name
    is an error.  Returns the :class:`~repro.workloads.registry
    .WorkloadSpec`.
    """
    from repro.workloads.registry import (WORKLOADS, WorkloadError,
                                          WorkloadSpec, register)

    handle = load_trace(path)
    trace_name = name if name is not None else handle.name
    existing = WORKLOADS.get(trace_name)
    if existing is not None:
        if existing.trace is not None \
                and existing.trace.file_sha256 == handle.file_sha256:
            return existing
        raise WorkloadError(
            f"workload name {trace_name!r} is already registered "
            f"{'to a different trace' if existing.trace is not None else 'to a generator workload'}; "
            f"pass a different name")
    handle = TraceHandle(**{**handle.__dict__, "name": trace_name})
    return register(WorkloadSpec(
        name=trace_name, description=handle.description,
        generator="trace", profile=handle.profile, trace=handle))
