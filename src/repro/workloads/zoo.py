"""The workload zoo: generator classes beyond the paper's five.

The paper's stated limitation (§2.2) is that it characterizes only
five timesharing environments.  Each profile here is a new *generator
class* for the same profile-driven synthetic code generator
(:mod:`repro.workloads.codegen`) — no new emission code, just a point
in mix/structure/memory/pacing space the 1984 study could not
measure.  All of them obey the generator's geometry (``data_kb`` is
capped by the fixed 64 KB scalar region between ``data_base`` and
``string_base``; ``code_kb`` by the 124 KB code window), and every one
must pass the full conservation-law battery on the stock 780
(``tests/workloads/test_zoo.py`` enforces this per generator, per
machine).

Profiles that lean on packed decimal declare the dependency in the
registry (``requires_families``) so that subset machines refuse them
*cleanly* instead of silently measuring a decimal-free imitation; the
paper's five keep the registry's silent-adaptation behaviour for
backward compatibility.
"""

from __future__ import annotations

from repro.workloads.profiles import MixProfile

#: Compiler/linker batch: dense integer compare-and-branch work, deep
#: call chains, case dispatch over parser states, near-zero float.
COMPILER_BUILD = MixProfile(
    name="compiler-build",
    description="Compiler and linker batch: parse tables, symbol "
                "lookup, deep call chains, case dispatch",
    move=26.0, arith=12.0, boolean=6.0, cmp_test=20.0, mova_push=4.5,
    field_ops=5.5, bit_branch=11.0, low_bit_test=7.0, float_ops=0.4,
    int_muldiv=1.0, char_ops=6.0, decimal_ops=0.0, queue_ops=0.3,
    probe_ops=0.4, case_branch=6.5, cond_branch=74.0, jmp_branch=1.2,
    call_density=1.0, jsb_density=1.0, syscall_density=0.02,
    blocking_syscall_fraction=0.08, string_length=24,
    code_kb=96, processes=4, quantum_ticks=2,
)

#: Transaction processing, decimal-heavy: COBOL-style packed-decimal
#: arithmetic over journal records.  Leans on the MOVP/ADDP/CVT*P
#: executor families, so subset machines must refuse it (declared via
#: ``requires_families`` in the registry) rather than adapt it away.
TRANSACTION_DECIMAL = MixProfile(
    name="transaction-decimal",
    description="Decimal-heavy transaction processing: packed-decimal "
                "ledger arithmetic, journalled updates, record moves",
    move=22.0, arith=6.0, cmp_test=14.0, field_ops=4.0, float_ops=0.2,
    int_muldiv=0.8, char_ops=18.0, decimal_ops=8.0, queue_ops=1.2,
    probe_ops=1.0, case_branch=3.6, cond_branch=60.0,
    decimal_digits=24, string_length=64,
    syscall_density=0.06, blocking_syscall_fraction=0.45,
    terminal_period_cycles=6000, io_block_cycles=9000, processes=6,
)

#: Interrupt storm: a machine saturated with device interrupts and
#: blocking I/O — terminal input every ~900 cycles, short disk waits,
#: constant rescheduling.  Exercises the SYSTEM rows and context-switch
#: microcode far beyond the paper's environments.
INTERRUPT_STORM = MixProfile(
    name="interrupt-storm",
    description="Interrupt-storm I/O: saturating terminal traffic, "
                "short blocking waits, constant rescheduling",
    move=25.0, arith=8.0, cmp_test=15.0, char_ops=7.0, float_ops=1.0,
    decimal_ops=0.0, queue_ops=1.5, probe_ops=1.2,
    syscall_density=0.10, blocking_syscall_fraction=0.60,
    clock_period_cycles=9000, terminal_period_cycles=900,
    io_block_cycles=2500, quantum_ticks=1, processes=10,
)

#: Pathological TB thrasher: many large-footprint processes switched on
#: every quantum tick, short loops hopping across a 96 KB code image —
#: the working set never fits the translation buffer.
TB_THRASH = MixProfile(
    name="tb-thrash",
    description="Pathological TB thrasher: a dozen large processes, "
                "rapid switching, sparse touches over wide images",
    move=28.0, arith=9.0, cmp_test=16.0, char_ops=5.0, float_ops=1.5,
    decimal_ops=0.0, case_branch=5.0, jmp_branch=3.0,
    loop_iterations=4, call_density=1.0, jsb_density=0.6,
    syscall_density=0.03,
    code_kb=96, string_kb=32, processes=12,
    clock_period_cycles=12000, quantum_ticks=1,
)

#: Pathological cache thrasher: streaming string moves long enough to
#: sweep the 8 KB cache, with barely-iterated loops so the cached lines
#: are evicted before reuse.
CACHE_THRASH = MixProfile(
    name="cache-thrash",
    description="Pathological cache thrasher: long streaming string "
                "moves and scattered scalar traffic defeating reuse",
    move=30.0, arith=7.0, cmp_test=18.0, char_ops=22.0, float_ops=0.6,
    decimal_ops=0.0, bit_branch=10.0,
    string_length=120, loop_iterations=3,
    code_kb=80, string_kb=24, processes=9,
)

#: Batch scientific vectors: long FP inner loops, little I/O — closer
#: to a dedicated array machine than to any timesharing load.
VECTOR_SCIENTIFIC = MixProfile(
    name="vector-scientific",
    description="Batch vector numerics: long floating-point inner "
                "loops, heavy multiply/divide, minimal I/O",
    move=20.0, arith=16.0, cmp_test=12.0, float_ops=25.0,
    int_muldiv=8.0, char_ops=0.8, decimal_ops=0.0, field_ops=2.0,
    loop_iterations=25, call_density=0.5, jsb_density=0.4,
    syscall_density=0.010, blocking_syscall_fraction=0.05,
    terminal_period_cycles=40000, processes=3, quantum_ticks=4,
)

#: Interactive editing: short bursts of string and move work between
#: fast terminal interactions, many small blocked waits.
EDITOR_INTERACTIVE = MixProfile(
    name="editor-interactive",
    description="Interactive editing: bursty string scans and moves "
                "driven by fast terminal traffic",
    move=30.0, arith=6.0, cmp_test=20.0, char_ops=16.0, float_ops=0.2,
    decimal_ops=0.0, low_bit_test=7.0,
    string_length=28, syscall_density=0.07,
    blocking_syscall_fraction=0.50,
    terminal_period_cycles=2500, io_block_cycles=5000, processes=10,
)

#: Kernel-service stress: queue and probe instructions plus a system
#: service rate triple the paper's — most of its time below the user
#: boundary.
QUEUE_KERNEL = MixProfile(
    name="queue-kernel",
    description="Kernel-service stress: queue/probe instructions and "
                "a system-service rate far past the measured loads",
    move=24.0, arith=9.0, cmp_test=15.0, mova_push=6.0, char_ops=4.0,
    float_ops=1.0, decimal_ops=0.0, queue_ops=3.0, probe_ops=2.5,
    syscall_density=0.12, blocking_syscall_fraction=0.25,
    save_mask_bits=6, processes=8,
)

#: The zoo, in registration order (after the paper's five).
ZOO_PROFILES = (
    COMPILER_BUILD,
    TRANSACTION_DECIMAL,
    INTERRUPT_STORM,
    TB_THRASH,
    CACHE_THRASH,
    VECTOR_SCIENTIFIC,
    EDITOR_INTERACTIVE,
    QUEUE_KERNEL,
)
