"""Analysis tests: reduction invariants and table computations."""

import pytest

from repro.analysis import (Measurement, Reduction, composite, section4,
                            table1, table2, table3, table4, table5, table6,
                            table7, table8, table9)
from repro.arch.groups import OpcodeGroup
from repro.ucode.rows import COLUMN_ORDER, Column, ROW_ORDER, Row
from tests.helpers import run


PROGRAM = """
    movl #30, r6
    clrl r1
loop:
    addl2 #1, r1
    movl @#var, r2
    cmpl r2, #5
    beql skip
    incl r3
skip:
    movl r1, @#var
    sobgtr r6, loop
    calls #0, @#sub
    halt
sub:
    .word ^x0004
    movc3 #12, @#buf, @#buf2
    ret
var:  .long 1
buf:  .space 16
buf2: .space 16
"""


@pytest.fixture(scope="module")
def measurement():
    machine = run(PROGRAM)
    return Measurement.capture("unit", machine), machine


class TestReductionInvariants:
    def test_cycles_conserved(self, measurement):
        meas, machine = measurement
        red = Reduction(meas.histogram)
        assert red.total_cycles() == machine.cycles

    def test_cells_sum_to_row_totals(self, measurement):
        meas, _ = measurement
        red = Reduction(meas.histogram)
        for row in ROW_ORDER:
            assert red.row_total(row) == sum(
                red.cells[(row, col)] for col in COLUMN_ORDER)

    def test_row_and_column_totals_agree(self, measurement):
        meas, _ = measurement
        red = Reduction(meas.histogram)
        by_rows = sum(red.row_total(r) for r in ROW_ORDER)
        by_cols = sum(red.column_total(c) for c in COLUMN_ORDER)
        assert by_rows == by_cols == red.total_cycles()

    def test_instructions_match_tracer(self, measurement):
        meas, machine = measurement
        red = Reduction(meas.histogram)
        assert red.instructions == machine.tracer.instructions

    def test_group_counts_match_tracer(self, measurement):
        meas, machine = measurement
        red = Reduction(meas.histogram)
        for group, count in machine.tracer.group_counts.items():
            assert red.group_instructions[group] == count

    def test_branch_taken_counts_match_tracer(self, measurement):
        meas, machine = measurement
        red = Reduction(meas.histogram)
        taken_hist = red.taken_count("BCOND")
        taken_trace = machine.tracer.branches_taken["BCOND"]
        assert taken_hist == taken_trace

    def test_tb_miss_counts_match_tracer(self, measurement):
        meas, machine = measurement
        red = Reduction(meas.histogram)
        total = sum(machine.tracer.tb_miss_services.values())
        assert red.tb_miss_services() == total


class TestTables:
    def test_table1_sums_to_100(self, measurement):
        meas, _ = measurement
        t = table1(meas)
        assert sum(t.frequency_percent.values()) == pytest.approx(100.0)

    def test_table1_simple_dominates(self, measurement):
        meas, _ = measurement
        t = table1(meas)
        assert t.frequency_percent[OpcodeGroup.SIMPLE] > 50

    def test_table2_loop_branches_mostly_taken(self, measurement):
        meas, _ = measurement
        t = table2(meas)
        loops = next(r for r in t.rows if r.label == "Loop branches")
        assert loops.executed == 30
        assert loops.taken == 29

    def test_table3_counts(self, measurement):
        meas, machine = measurement
        t = table3(meas)
        n = machine.tracer.instructions
        assert t.first_specifiers * n == pytest.approx(
            sum(v for (b, _), v in
                machine.tracer.specifier_modes.items() if b == "spec1"))

    def test_table4_percentages_sum(self, measurement):
        meas, _ = measurement
        t = table4(meas)
        assert sum(t.total_percent.values()) == pytest.approx(100.0)

    def test_table5_totals_are_row_sums(self, measurement):
        meas, _ = measurement
        t = table5(meas)
        assert t.total_reads == pytest.approx(
            sum(r for r, _ in t.rows.values()))
        assert t.total_writes == pytest.approx(
            sum(w for _, w in t.rows.values()))

    def test_table6_size_accounting(self, measurement):
        meas, machine = measurement
        t = table6(meas)
        n = machine.tracer.instructions
        recomposed = (1.0 + t.specifiers_per_instruction
                      * t.avg_specifier_size
                      + t.branch_disp_bytes_per_instruction)
        assert recomposed == pytest.approx(t.total_bytes, rel=1e-6)

    def test_table7_infinite_when_absent(self, measurement):
        meas, _ = measurement
        t = table7(meas)
        # The bare test program has no interrupts or switches.
        assert t.context_switch_headway == float("inf")

    def test_table8_total_consistency(self, measurement):
        meas, _ = measurement
        t = table8(meas)
        assert t.cycles_per_instruction == pytest.approx(
            sum(t.row_totals.values()))
        assert t.cycles_per_instruction == pytest.approx(
            sum(t.column_totals.values()))

    def test_table9_character_heaviest(self, measurement):
        meas, _ = measurement
        t = table9(meas)
        assert t.totals[OpcodeGroup.CHARACTER] > \
            t.totals[OpcodeGroup.SIMPLE]

    def test_section4_fields_populated(self, measurement):
        meas, _ = measurement
        s = section4(meas)
        assert s.ib_references_per_instruction > 0
        assert 0 < s.ib_bytes_per_reference <= 4
        assert s.avg_instruction_bytes > 1


class TestComposition:
    def test_measurements_add(self, measurement):
        meas, machine = measurement
        double = meas + meas
        assert double.tracer.instructions == 2 * meas.tracer.instructions
        assert double.histogram.total_cycles() == \
            2 * meas.histogram.total_cycles()

    def test_composite_preserves_ratios(self, measurement):
        meas, _ = measurement
        combined = composite([meas, meas, meas])
        t_single = table8(meas)
        t_triple = table8(combined)
        assert t_triple.cycles_per_instruction == pytest.approx(
            t_single.cycles_per_instruction)

    def test_composite_empty_rejected(self):
        with pytest.raises(ValueError):
            composite([])

    def test_memory_stats_add(self, measurement):
        meas, _ = measurement
        double = meas + meas
        assert double.memory.ib_references == 2 * meas.memory.ib_references
        assert double.memory.tb_misses == 2 * meas.memory.tb_misses
