"""Reduction on hand-built histograms: exact, deterministic expectations.

These tests bypass the simulator entirely: they construct raw count
arrays the way the board would have filled them and verify the analysis
classifies every bucket exactly — the data-reduction logic tested in
isolation from workload noise.
"""

import pytest

from repro.analysis.measurement import Measurement, MemoryStats, TracerStats
from repro.analysis.reduction import Reduction, reference_map
from repro.analysis.tables import table1, table2, table8
from repro.arch.groups import OpcodeGroup
from repro.monitor.histogram import Histogram
from repro.ucode.controlstore import CONTROL_STORE_SIZE
from repro.ucode.rows import Column, Row


def empty_counts():
    return [0] * CONTROL_STORE_SIZE, [0] * CONTROL_STORE_SIZE


def make_measurement(nonstalled, stalled):
    return Measurement("synthetic", Histogram(nonstalled, stalled),
                       TracerStats(), MemoryStats(), cycles=0)


class TestSyntheticReduction:
    def test_single_decode_bucket(self):
        _, umap = reference_map()
        ns, st_counts = empty_counts()
        ns[umap.ird["MOV"]] = 7
        red = Reduction(Histogram(ns, st_counts))
        assert red.instructions == 7
        assert red.group_instructions[OpcodeGroup.SIMPLE] == 7
        assert red.cells[(Row.DECODE, Column.COMPUTE)] == 7
        assert red.total_cycles() == 7

    def test_stall_classification(self):
        _, umap = reference_map()
        ns, st_counts = empty_counts()
        read_upc = umap.spec_flows[Row.SPEC1][
            list(umap.spec_flows[Row.SPEC1])[0]].read
        ns[read_upc] = 3
        st_counts[read_upc] = 12
        red = Reduction(Histogram(ns, st_counts))
        assert red.cells[(Row.SPEC1, Column.READ)] == 3
        assert red.cells[(Row.SPEC1, Column.RSTALL)] == 12
        assert red.reads_by_row[Row.SPEC1] == 3
        assert red.total_cycles() == 15

    def test_ib_stall_bucket_is_cycles(self):
        _, umap = reference_map()
        ns, st_counts = empty_counts()
        ns[umap.ird_stall] = 9
        red = Reduction(Histogram(ns, st_counts))
        # §4.3: executions of the insufficient-bytes dispatch ARE the
        # IB-stall cycles.
        assert red.cells[(Row.DECODE, Column.IBSTALL)] == 9

    def test_taken_count_from_redirect_slot(self):
        _, umap = reference_map()
        ns, st_counts = empty_counts()
        ns[umap.ird["BCOND"]] = 10
        ns[umap.exec_flows["BCOND"]["redirect"]] = 6
        red = Reduction(Histogram(ns, st_counts))
        assert red.executed_count("BCOND") == 10
        assert red.taken_count("BCOND") == 6
        meas = make_measurement(ns, st_counts)
        result = table2(meas)
        top = result.rows[0]
        assert top.executed == 10 and top.taken == 6
        assert top.percent_taken == pytest.approx(60.0)

    def test_tb_miss_accounting(self):
        _, umap = reference_map()
        ns, st_counts = empty_counts()
        ns[umap.tbm_entry] = 2
        ns[umap.tbm_compute] = 24
        ns[umap.tbm_pte_read] = 2
        st_counts[umap.tbm_pte_read] = 7
        ns[umap.tbm_insert] = 12
        red = Reduction(Histogram(ns, st_counts))
        assert red.tb_miss_services() == 2
        assert red.tb_miss_cycles() == 2 + 24 + 2 + 7 + 12
        assert red.tb_miss_stall_cycles() == 7

    def test_table1_from_synthetic_dispatches(self):
        _, umap = reference_map()
        ns, st_counts = empty_counts()
        ns[umap.ird["MOV"]] = 80
        ns[umap.ird["CALL"]] = 15
        ns[umap.ird["MOVC"]] = 5
        meas = make_measurement(ns, st_counts)
        result = table1(meas)
        assert result.instructions == 100
        assert result.frequency_percent[OpcodeGroup.SIMPLE] == \
            pytest.approx(80.0)
        assert result.frequency_percent[OpcodeGroup.CALLRET] == \
            pytest.approx(15.0)
        assert result.frequency_percent[OpcodeGroup.CHARACTER] == \
            pytest.approx(5.0)

    def test_table8_per_instruction_normalisation(self):
        _, umap = reference_map()
        ns, st_counts = empty_counts()
        ns[umap.ird["MOV"]] = 4
        ns[umap.exec_flows["MOV"]["exec"]] = 4
        ns[umap.ird_stall] = 8
        meas = make_measurement(ns, st_counts)
        result = table8(meas)
        assert result.cells[(Row.DECODE, Column.COMPUTE)] == 1.0
        assert result.cells[(Row.DECODE, Column.IBSTALL)] == 2.0
        assert result.cells[(Row.EX_SIMPLE, Column.COMPUTE)] == 1.0
        assert result.cycles_per_instruction == pytest.approx(4.0)

    def test_every_allocated_address_is_classifiable(self):
        store, _ = reference_map()
        ns, st_counts = empty_counts()
        for ann in store.annotations():
            ns[ann.address] = 1
        red = Reduction(Histogram(ns, st_counts))
        assert red.total_cycles() == store.allocated

    def test_stall_on_compute_address_rejected(self):
        _, umap = reference_map()
        ns, st_counts = empty_counts()
        st_counts[umap.tbm_entry] = 5  # compute slots cannot stall
        with pytest.raises(AssertionError):
            Reduction(Histogram(ns, st_counts))
