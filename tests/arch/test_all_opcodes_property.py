"""Property test: encode/decode/disassemble round trip over ALL opcodes.

Hypothesis picks arbitrary opcodes from the full table and arbitrary
valid operand encodings for their signatures; encoding must decode back
to the same opcode, operand modes and total length, and the disassembly
must re-assemble to identical bytes.
"""

from hypothesis import given, settings, strategies as st

from repro.arch import encode as enc
from repro.arch.decode import decode_instruction
from repro.arch.disasm import format_instruction
from repro.arch.opcodes import ALL_OPCODES
from repro.asm import assemble_text
from repro.arch.specifiers import AddressingMode


def random_operand(draw, kind):
    """A valid random operand for one OperandKind."""
    access = kind.access
    choice = draw(st.integers(0, 5 if access == "r" else 3))
    reg = draw(st.integers(0, 11))
    if access in ("r", "v") and choice == 0:
        return enc.literal(draw(st.integers(0, 63)))
    if access in ("r", "m", "w", "v") and choice == 1:
        return enc.register(reg)
    if choice == 2:
        return enc.register_deferred(reg)
    if choice == 3:
        return enc.displacement(reg, draw(st.integers(-2000, 2000)))
    if access == "r" and choice == 4:
        return enc.immediate(draw(st.integers(0, 255)))
    return enc.autoincrement(reg)


@st.composite
def encoded_instruction(draw):
    info = draw(st.sampled_from(ALL_OPCODES))
    operands = [random_operand(draw, kind)
                for kind in info.specifier_operands]
    branch = None
    if info.branch_operand is not None:
        limit = 100 if info.branch_operand.dtype == "b" else 20000
        branch = draw(st.integers(-limit, limit))
    table = None
    if info.family == "CASE":
        # CASE limit must be a short literal for the decode cache.
        operands[2] = enc.literal(draw(st.integers(0, 5)))
        table = [draw(st.integers(-100, 100))
                 for _ in range(operands[2].value + 1)]
    data = enc.encode_instruction(info, operands, branch_disp=branch,
                                  case_table=table)
    return info, operands, data


class TestAllOpcodesRoundTrip:
    @given(encoded_instruction())
    @settings(max_examples=300, deadline=None)
    def test_decode_matches_encode(self, case):
        info, operands, data = case

        def fetch(addr):
            return data[addr]

        inst = decode_instruction(fetch, 0)
        assert inst.info is info
        assert inst.length == len(data)
        assert len(inst.specifiers) == len(operands)
        for spec, op in zip(inst.specifiers, operands):
            if op.mode is AddressingMode.SHORT_LITERAL:
                assert spec.mode is AddressingMode.SHORT_LITERAL
                assert spec.value == op.value
            elif op.mode is AddressingMode.DISPLACEMENT:
                assert spec.displacement == op.displacement
            elif op.mode is AddressingMode.IMMEDIATE:
                assert spec.mode is AddressingMode.IMMEDIATE
            else:
                assert spec.register == op.register

    @given(encoded_instruction())
    @settings(max_examples=150, deadline=None)
    def test_disassembly_reassembles(self, case):
        info, operands, data = case
        if info.family == "CASE" or info.branch_operand is not None:
            return  # their targets render as absolute addresses

        def fetch(addr):
            return data[addr]

        inst = decode_instruction(fetch, 0)
        text = format_instruction(inst)
        again = assemble_text(text, base=0)
        assert again.data == data
