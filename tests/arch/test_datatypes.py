"""Unit tests for VAX datatype helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.arch.datatypes import (DataType, add_with_flags, f_float_decode,
                                  f_float_encode, is_negative, mask,
                                  sign_extend, sub_with_flags)


class TestDataType:
    def test_sizes(self):
        assert DataType.BYTE.size == 1
        assert DataType.WORD.size == 2
        assert DataType.LONG.size == 4
        assert DataType.QUAD.size == 8
        assert DataType.F_FLOAT.size == 4
        assert DataType.D_FLOAT.size == 8

    def test_bits(self):
        assert DataType.LONG.bits == 32

    def test_is_float(self):
        assert DataType.F_FLOAT.is_float
        assert not DataType.LONG.is_float


class TestMaskAndSign:
    def test_mask_truncates(self):
        assert mask(0x1FF, 1) == 0xFF
        assert mask(-1, 4) == 0xFFFFFFFF

    def test_sign_extend_negative(self):
        assert sign_extend(0xFF, 1) == -1
        assert sign_extend(0x8000, 2) == -32768

    def test_sign_extend_positive(self):
        assert sign_extend(0x7F, 1) == 127

    def test_is_negative(self):
        assert is_negative(0x80, 1)
        assert not is_negative(0x7FFFFFFF, 4)

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_sign_extend_roundtrip_long(self, value):
        assert sign_extend(mask(value, 4), 4) == value


class TestFlagArithmetic:
    def test_add_carry(self):
        result, n, z, v, c = add_with_flags(0xFFFFFFFF, 1, 4)
        assert result == 0
        assert z and c and not v and not n

    def test_add_overflow(self):
        result, n, z, v, c = add_with_flags(0x7FFFFFFF, 1, 4)
        assert result == 0x80000000
        assert v and n and not c and not z

    def test_sub_borrow(self):
        result, n, z, v, c = sub_with_flags(0, 1, 4)
        assert result == 0xFFFFFFFF
        assert c and n and not v

    def test_sub_equal_sets_z(self):
        result, n, z, v, c = sub_with_flags(42, 42, 4)
        assert z and result == 0 and not c

    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
    def test_add_matches_python(self, a, b):
        result, n, z, v, c = add_with_flags(a, b, 4)
        assert result == (a + b) & 0xFFFFFFFF
        assert c == (a + b > 0xFFFFFFFF)
        signed = sign_extend(a, 4) + sign_extend(b, 4)
        assert v == not_in_long_range(signed)

    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
    def test_sub_matches_python(self, a, b):
        result, n, z, v, c = sub_with_flags(a, b, 4)
        assert result == (a - b) & 0xFFFFFFFF
        assert c == (a < b)
        signed = sign_extend(a, 4) - sign_extend(b, 4)
        assert v == not_in_long_range(signed)


def not_in_long_range(value):
    return not -(2 ** 31) <= value <= 2 ** 31 - 1


class TestFFloat:
    def test_zero_roundtrip(self):
        assert f_float_decode(f_float_encode(0.0)) == 0.0

    @pytest.mark.parametrize("value", [1.0, -1.0, 0.5, 3.14159, -1234.5,
                                       1e10, -1e-10])
    def test_roundtrip_is_close(self, value):
        decoded = f_float_decode(f_float_encode(value))
        assert math.isclose(decoded, value, rel_tol=1e-6)

    @given(st.floats(min_value=-1e30, max_value=1e30,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_property(self, value):
        decoded = f_float_decode(f_float_encode(value))
        if value == 0.0 or abs(value) < 1e-38:
            assert decoded == 0.0 or math.isclose(decoded, value,
                                                  rel_tol=1e-6, abs_tol=1e-37)
        else:
            assert math.isclose(decoded, value, rel_tol=1e-6)

    def test_one_has_canonical_pattern(self):
        # 1.0 = 0.5 * 2^1 -> exponent 129, zero fraction.
        assert f_float_encode(1.0) == (129 << 23)
