"""Disassembler tests, including assembler round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.disasm import (disassemble, disassemble_image,
                               disassemble_machine, format_instruction)
from repro.asm import assemble_text
from repro.cpu.machine import VAX780
from repro.vm.address import S0_BASE


def disasm_text(source: str, count=None, base=0x200):
    image = assemble_text(source, base=base)
    return [line.text for line in disassemble_image(image, count)]


class TestFormatting:
    def test_register_to_register(self):
        assert disasm_text("movl r0, r1") == ["movl    r0, r1"]

    def test_literal_and_immediate(self):
        lines = disasm_text("movl #5, r0\nmovl #100, r0")
        assert lines[0] == "movl    s^#5, r0"
        assert lines[1] == "movl    i^#100, r0"

    def test_memory_modes(self):
        lines = disasm_text("""
            movl (r2), r3
            movl (r2)+, r3
            movl -(r2), r3
            movl @(r2)+, r3
            movl 8(r2), r3
            movl @8(r2), r3
            movl @#^x1000, r3
        """)
        assert lines == [
            "movl    (r2), r3",
            "movl    (r2)+, r3",
            "movl    -(r2), r3",
            "movl    @(r2)+, r3",
            "movl    8(r2), r3",
            "movl    @8(r2), r3",
            "movl    @#^x1000, r3",
        ]

    def test_indexed(self):
        assert disasm_text("movl 4(r2)[r7], r3") == \
            ["movl    4(r2)[r7], r3"]

    def test_negative_displacement(self):
        assert disasm_text("movl -4(r2), r3") == ["movl    -4(r2), r3"]

    def test_branch_target_absolute(self):
        lines = disasm_text("brb next\nnext: nop", base=0x100)
        assert lines[0] == "brb     ^x102"

    def test_no_operand(self):
        assert disasm_text("nop\nhalt") == ["nop", "halt"]

    def test_case_table_targets(self):
        lines = disasm_text("""
            casel r0, #0, #1, (c0, c1)
        c0: nop
        c1: halt
        """, base=0)
        assert lines[0].startswith("casel   r0, s^#0, s^#1, (")
        assert "^x" in lines[0]

    def test_line_renders_with_bytes(self):
        image = assemble_text("nop", base=0x200)
        line = disassemble_image(image)[0]
        text = str(line)
        assert text.startswith("00000200")
        assert "01" in text  # NOP opcode byte
        assert "nop" in text

    def test_undecodable_byte(self):
        image = assemble_text(".byte ^xFF\nnop", base=0)

        def fetch(addr):
            return image.data[addr]

        lines = disassemble(fetch, 0, 2)
        assert lines[0].text == ".byte   ^xFF"
        assert lines[1].text == "nop"


class TestRoundTrip:
    SOURCES = [
        "movl #5, r0",
        "addl3 r1, 4(r2), r3",
        "movl @#^x2000, r5",
        "incl -(r9)",
        "extzv #4, #8, r3, r1",
        "calls #0, @#^x3000",
        "movc3 #40, 4(r10), 8(r10)",
        "pushr #^x003F",
        "cmpl (r8)+, @12(r11)",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_reassembles_to_same_bytes(self, source):
        first = assemble_text(source, base=0x400)
        text = disassemble_image(first)[0].text
        second = assemble_text(text, base=0x400)
        assert second.data == first.data

    @given(st.integers(0, 11), st.integers(0, 11),
           st.integers(-100, 100))
    @settings(max_examples=20, deadline=None)
    def test_displacement_roundtrip_property(self, r1, r2, disp):
        source = f"movl {disp}(r{r1}), r{r2}"
        first = assemble_text(source, base=0)
        text = disassemble_image(first)[0].text
        assert assemble_text(text, base=0).data == first.data


class TestMachineDisassembly:
    def test_disassemble_live_machine(self):
        image = assemble_text("""
            movl #1, r0
            addl2 #2, r0
            halt
        """, base=S0_BASE + 0x2000)
        machine = VAX780()
        machine.boot(image)
        lines = disassemble_machine(machine, image.base, count=3)
        assert lines[0].text == "movl    s^#1, r0"
        assert lines[1].text == "addl2   s^#2, r0"
        assert lines[2].text == "halt"

    def test_disassemble_generated_workload(self):
        from repro.workloads.codegen import ProgramGenerator
        from repro.workloads.profiles import TIMESHARING_RESEARCH
        prog = ProgramGenerator(TIMESHARING_RESEARCH, seed=3).generate()

        def fetch(addr):
            return prog.code[addr - prog.code_base]

        lines = disassemble(fetch, prog.entry, 30)
        assert len(lines) == 30
        assert all(line.instruction is not None for line in lines)
