"""Round-trip tests for instruction encoding and decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import encode as enc
from repro.arch.decode import DecodeError, decode_instruction
from repro.arch.opcodes import opcode
from repro.arch.specifiers import AddressingMode


def decode_bytes(data, address=0):
    """Decode an instruction from a byte buffer rooted at ``address``."""
    def fetch(addr):
        return data[addr - address]
    return decode_instruction(fetch, address)


class TestOperandEncoding:
    def test_register(self):
        data = enc.encode_instruction(opcode("TSTL"), [enc.register(3)])
        assert data == bytes([0xD5, 0x53])

    def test_short_literal(self):
        data = enc.encode_instruction(opcode("TSTL"), [enc.literal(5)])
        assert data == bytes([0xD5, 0x05])

    def test_immediate_long(self):
        data = enc.encode_instruction(opcode("PUSHL"),
                                      [enc.immediate(0x12345678)])
        assert data == bytes([0xDD, 0x8F, 0x78, 0x56, 0x34, 0x12])

    def test_byte_displacement(self):
        data = enc.encode_instruction(opcode("TSTL"),
                                      [enc.displacement(2, -4)])
        assert data == bytes([0xD5, 0xA2, 0xFC])

    def test_word_displacement_auto_sized(self):
        data = enc.encode_instruction(opcode("TSTL"),
                                      [enc.displacement(2, 300)])
        assert data == bytes([0xD5, 0xC2, 0x2C, 0x01])

    def test_indexed(self):
        base = enc.displacement(2, 8).indexed(4)
        data = enc.encode_instruction(opcode("TSTL"), [base])
        assert data == bytes([0xD5, 0x44, 0xA2, 0x08])

    def test_literal_cannot_be_indexed(self):
        with pytest.raises(enc.EncodeError):
            enc.literal(5).indexed(3)

    def test_branch_byte(self):
        data = enc.encode_instruction(opcode("BNEQ"), [], branch_disp=-2)
        assert data == bytes([0x12, 0xFE])

    def test_branch_word(self):
        data = enc.encode_instruction(opcode("BRW"), [], branch_disp=1000)
        assert data == bytes([0x31, 0xE8, 0x03])

    def test_missing_branch_raises(self):
        with pytest.raises(enc.EncodeError):
            enc.encode_instruction(opcode("BNEQ"), [])

    def test_operand_count_checked(self):
        with pytest.raises(enc.EncodeError):
            enc.encode_instruction(opcode("MOVL"), [enc.register(0)])


class TestDecode:
    def test_movl_register_to_register(self):
        inst = decode_bytes(bytes([0xD0, 0x50, 0x51]))
        assert inst.mnemonic == "MOVL"
        assert inst.length == 3
        assert inst.specifiers[0].mode is AddressingMode.REGISTER
        assert inst.specifiers[0].register == 0
        assert inst.specifiers[1].register == 1

    def test_decode_immediate(self):
        data = enc.encode_instruction(opcode("MOVL"),
                                      [enc.immediate(0xDEADBEEF),
                                       enc.register(1)])
        inst = decode_bytes(data)
        assert inst.specifiers[0].mode is AddressingMode.IMMEDIATE
        assert inst.specifiers[0].value == 0xDEADBEEF

    def test_decode_absolute(self):
        data = enc.encode_instruction(opcode("TSTL"),
                                      [enc.absolute(0x1000)])
        inst = decode_bytes(data)
        assert inst.specifiers[0].mode is AddressingMode.ABSOLUTE
        assert inst.specifiers[0].value == 0x1000

    def test_decode_branch_target(self):
        inst = decode_bytes(bytes([0x12, 0xFE]), address=0x100)
        assert inst.branch_displacement == -2
        assert inst.branch_target() == 0x100

    def test_reserved_opcode_raises(self):
        with pytest.raises(DecodeError):
            decode_bytes(bytes([0xFF, 0x00, 0x00]))

    def test_case_table_decoded(self):
        data = enc.encode_instruction(
            opcode("CASEL"),
            [enc.register(0), enc.literal(0), enc.literal(2)],
            case_table=[4, 8, 12])
        inst = decode_bytes(data)
        assert inst.case_table == (4, 8, 12)
        assert inst.length == len(data)

    def test_case_nonliteral_limit_rejected(self):
        data = enc.encode_instruction(
            opcode("CASEL"),
            [enc.register(0), enc.literal(0), enc.register(1)],
            case_table=[0])
        with pytest.raises(DecodeError):
            decode_bytes(data)

    def test_double_index_rejected(self):
        with pytest.raises(DecodeError):
            decode_bytes(bytes([0xD5, 0x44, 0x43, 0x52]))


@st.composite
def operand_strategy(draw):
    choice = draw(st.integers(0, 6))
    reg = draw(st.integers(0, 11))
    if choice == 0:
        return enc.literal(draw(st.integers(0, 63)))
    if choice == 1:
        return enc.register(reg)
    if choice == 2:
        return enc.register_deferred(reg)
    if choice == 3:
        return enc.displacement(reg, draw(st.integers(-30000, 30000)))
    if choice == 4:
        return enc.autoincrement(reg)
    if choice == 5:
        return enc.autodecrement(reg)
    return enc.disp_deferred(reg, draw(st.integers(-100, 100)))


class TestRoundTripProperty:
    @given(operand_strategy(), operand_strategy())
    def test_movl_roundtrip(self, src, dst):
        data = enc.encode_instruction(opcode("MOVL"), [src, dst])
        inst = decode_bytes(data)
        assert inst.mnemonic == "MOVL"
        assert inst.length == len(data)
        decoded_src = inst.specifiers[0]
        assert decoded_src.mode is src.mode
        if src.mode is AddressingMode.SHORT_LITERAL:
            assert decoded_src.value == src.value
        elif src.mode in (AddressingMode.DISPLACEMENT,
                          AddressingMode.DISP_DEFERRED):
            assert decoded_src.displacement == src.displacement
        else:
            assert decoded_src.register == src.register

    @given(st.integers(-128, 127))
    def test_branch_roundtrip(self, disp):
        data = enc.encode_instruction(opcode("BEQL"), [], branch_disp=disp)
        inst = decode_bytes(data, address=0x2000)
        assert inst.branch_displacement == disp
        assert inst.branch_target() == 0x2000 + 2 + disp
