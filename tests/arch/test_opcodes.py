"""Unit tests for the opcode table."""

import pytest

from repro.arch.groups import GROUP_ORDER, OpcodeGroup
from repro.arch.opcodes import (ALL_FAMILIES, ALL_OPCODES, OPCODES_BY_VALUE,
                                opcode, opcodes_in_group)


class TestOpcodeTable:
    def test_known_values(self):
        assert opcode("MOVL").value == 0xD0
        assert opcode("ADDL2").value == 0xC0
        assert opcode("BRB").value == 0x11
        assert opcode("CALLS").value == 0xFB
        assert opcode("RET").value == 0x04
        assert opcode("MOVC3").value == 0x28
        assert opcode("CHMK").value == 0xBC

    def test_lookup_case_insensitive(self):
        assert opcode("movl") is opcode("MOVL")

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError):
            opcode("FROB")

    def test_values_unique(self):
        assert len(OPCODES_BY_VALUE) == len(ALL_OPCODES)

    def test_every_group_populated(self):
        for group in GROUP_ORDER:
            assert opcodes_in_group(group), f"empty group {group}"

    def test_subset_size_is_substantial(self):
        assert len(ALL_OPCODES) >= 140

    def test_branch_operand_is_last(self):
        for info in ALL_OPCODES:
            for i, op in enumerate(info.operands):
                if op.is_branch_displacement:
                    assert i == len(info.operands) - 1, info.mnemonic

    def test_specifier_operands_excludes_branch(self):
        info = opcode("SOBGTR")
        assert len(info.operands) == 2
        assert len(info.specifier_operands) == 1
        assert info.branch_operand is not None


class TestMicrocodeSharing:
    """The family field models the paper's microcode-sharing ambiguity."""

    def test_add_sub_share(self):
        assert opcode("ADDL2").family == opcode("SUBL2").family

    def test_brb_shares_with_conditionals(self):
        # Paper, Table 2 discussion: BRB and BRW are grouped with simple
        # conditional branches because of microcode sharing.
        assert opcode("BRB").family == opcode("BNEQ").family
        assert opcode("BRW").family == opcode("BEQL").family

    def test_chm_variants_share(self):
        assert opcode("CHMK").family == opcode("CHME").family

    def test_families_nonempty(self):
        assert len(ALL_FAMILIES) > 30


class TestGroupMembership:
    @pytest.mark.parametrize("mnemonic,group", [
        ("MOVL", OpcodeGroup.SIMPLE),
        ("BLBS", OpcodeGroup.SIMPLE),
        ("SOBGTR", OpcodeGroup.SIMPLE),
        ("EXTV", OpcodeGroup.FIELD),
        ("BBSS", OpcodeGroup.FIELD),
        ("ADDF2", OpcodeGroup.FLOAT),
        ("MULL3", OpcodeGroup.FLOAT),
        ("CALLS", OpcodeGroup.CALLRET),
        ("PUSHR", OpcodeGroup.CALLRET),
        ("CHMK", OpcodeGroup.SYSTEM),
        ("REI", OpcodeGroup.SYSTEM),
        ("INSQUE", OpcodeGroup.SYSTEM),
        ("MOVC3", OpcodeGroup.CHARACTER),
        ("ADDP4", OpcodeGroup.DECIMAL),
    ])
    def test_membership(self, mnemonic, group):
        assert opcode(mnemonic).group is group

    def test_integer_muldiv_in_float_group(self):
        # Table 1: FLOAT group includes integer multiply/divide.
        assert opcode("MULL2").group is OpcodeGroup.FLOAT
        assert opcode("DIVL3").group is OpcodeGroup.FLOAT
        assert opcode("EMUL").group is OpcodeGroup.FLOAT
