"""Tests for the text assembler and program builder."""

import pytest

from repro.arch import encode as enc
from repro.arch.decode import decode_instruction
from repro.arch.specifiers import AddressingMode
from repro.asm import AssemblyError, ProgramBuilder, assemble_text


def decode_at(image, address):
    def fetch(addr):
        return image.data[addr - image.base]
    return decode_instruction(fetch, address)


class TestProgramBuilder:
    def test_emit_and_labels(self):
        b = ProgramBuilder()
        b.label("start")
        b.emit("MOVL", enc.register(0), enc.register(1))
        b.emit("HALT")
        image = b.assemble(0x1000)
        assert image.address_of("start") == 0x1000
        assert image.data[-1] == 0x00

    def test_backward_branch_fixup(self):
        b = ProgramBuilder()
        b.label("loop")
        b.emit("INCL", enc.register(0))
        b.branch("BRB", "loop")
        image = b.assemble(0x1000)
        inst = decode_at(image, 0x1000 + 2)
        assert inst.branch_target() == 0x1000

    def test_forward_branch_fixup(self):
        b = ProgramBuilder()
        b.branch("BNEQ", "done")
        b.emit("INCL", enc.register(0))
        b.label("done")
        b.emit("HALT")
        image = b.assemble(0)
        inst = decode_at(image, 0)
        assert inst.branch_target() == image.address_of("done")

    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.branch("BRB", "nowhere")
        with pytest.raises(AssemblyError):
            b.assemble(0)

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(AssemblyError):
            b.label("x")

    def test_branch_out_of_range_raises(self):
        b = ProgramBuilder()
        b.branch("BRB", "far")
        b.space(200)
        b.label("far")
        with pytest.raises(AssemblyError):
            b.assemble(0)

    def test_case_table_targets(self):
        b = ProgramBuilder()
        b.case("CASEL", enc.register(0), enc.literal(0), enc.literal(1),
               ["c0", "c1"])
        b.label("c0")
        b.emit("NOP")
        b.label("c1")
        b.emit("HALT")
        image = b.assemble(0x400)
        inst = decode_at(image, 0x400)
        # Displacements are relative to the start of the table.
        table_base = 0x400 + inst.length - 4
        assert table_base + inst.case_table[0] == image.address_of("c0")
        assert table_base + inst.case_table[1] == image.address_of("c1")


class TestTextAssembler:
    def test_simple_program(self):
        image = assemble_text("""
        start:
            movl    #100, r0
            clrl    r1
        loop:
            addl2   r0, r1
            sobgtr  r0, loop
            halt
        """, base=0x200)
        assert image.entry == 0x200
        inst = decode_at(image, 0x200)
        assert inst.mnemonic == "MOVL"
        assert inst.specifiers[0].mode is AddressingMode.IMMEDIATE
        assert inst.specifiers[0].value == 100

    def test_short_literal_auto(self):
        image = assemble_text("tstl #5", base=0)
        inst = decode_at(image, 0)
        assert inst.specifiers[0].mode is AddressingMode.SHORT_LITERAL

    def test_forced_immediate(self):
        image = assemble_text("tstl i^#5", base=0)
        inst = decode_at(image, 0)
        assert inst.specifiers[0].mode is AddressingMode.IMMEDIATE

    def test_addressing_modes(self):
        image = assemble_text("""
            movl (r2), r3
            movl (r2)+, r3
            movl -(r2), r3
            movl @(r2)+, r3
            movl 8(r2), r3
            movl @8(r2), r3
            movl @#^x1000, r3
        """, base=0)
        modes = []
        addr = 0
        for _ in range(7):
            inst = decode_at(image, addr)
            modes.append(inst.specifiers[0].mode)
            addr += inst.length
        assert modes == [
            AddressingMode.REGISTER_DEFERRED,
            AddressingMode.AUTOINCREMENT,
            AddressingMode.AUTODECREMENT,
            AddressingMode.AUTOINC_DEFERRED,
            AddressingMode.DISPLACEMENT,
            AddressingMode.DISP_DEFERRED,
            AddressingMode.ABSOLUTE,
        ]

    def test_indexed_operand(self):
        image = assemble_text("""
            movl 4(r2)[r4], r3
        """, base=0)
        inst = decode_at(image, 0)
        assert inst.specifiers[0].index_register == 4

    def test_label_as_absolute(self):
        image = assemble_text("""
            movl @#counter, r0
            halt
        counter:
            .long 42
        """, base=0x100)
        inst = decode_at(image, 0x100)
        assert inst.specifiers[0].value == image.address_of("counter")

    def test_data_directives(self):
        image = assemble_text("""
            .byte 1, 2, 3
            .word ^x1234
            .long ^xDEADBEEF
            .space 4
        """, base=0)
        assert image.data[:3] == bytes([1, 2, 3])
        assert image.data[3:5] == bytes([0x34, 0x12])
        assert image.data[5:9] == bytes([0xEF, 0xBE, 0xAD, 0xDE])
        assert len(image.data) == 13

    def test_case_statement(self):
        image = assemble_text("""
            casel r0, #0, #1, (c0, c1)
        c0: nop
        c1: halt
        """, base=0)
        inst = decode_at(image, 0)
        assert inst.mnemonic == "CASEL"
        assert len(inst.case_table) == 2

    def test_error_reports_line(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble_text("nop\nbogus r0\n", base=0)

    def test_forward_data_reference(self):
        image = assemble_text("""
            movl @#buf, r0
            halt
        buf:
            .space 16
        """, base=0x800)
        inst = decode_at(image, 0x800)
        assert inst.specifiers[0].value == image.address_of("buf")
