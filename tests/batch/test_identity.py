"""Scalar <-> batch bit-identity: the engine's load-bearing contract.

Every observable a Measurement carries — cycle count, both histogram
count sets bucket by bucket, every tracer scalar and counter, every
memory-subsystem statistic — must be equal bit for bit between a batch
lane and an independent scalar run of the same (workload, budget,
seed).  That includes the failure modes: a lane that hits the cycle
limit or a halted machine must reproduce the scalar engine's exact
RuntimeError message.
"""

from dataclasses import replace

import pytest

from repro.analysis.measurement import Measurement, composite
from repro.batch import LaneSpec, run_lanes
from repro.batch.engine import HALTED_ERROR
from repro.cpu.machine import VAX780
from repro.osim.executive import Executive
from repro.validate.differential import _MEMORY_FIELDS
from repro.workloads.profiles import STANDARD_PROFILES, \
    TIMESHARING_RESEARCH

PREFIX = 400
BUDGET = 800

#: Single blocked process + fast clock: the scheduler lands on the null
#: process and the measurement gate actually closes mid-run.
GATED = replace(TIMESHARING_RESEARCH, name="gated-mix",
                description="gating stress", processes=1,
                syscall_density=0.5, blocking_syscall_fraction=1.0,
                clock_period_cycles=1500, io_block_cycles=6000)

#: Same shape with a block so long the 400-cycles-per-instruction
#: budget cannot cover it: the scalar engine raises the cycle-limit
#: error at budget 1900 (seed 3) but completes 1600 clean.
LIMITED = replace(GATED, name="limited-mix",
                  description="cycle-limit stress",
                  clock_period_cycles=1000, io_block_cycles=1_000_000)


def scalar_measure(profile, instructions, seed) -> Measurement:
    """One fresh scalar-engine run — the reference side."""
    machine = VAX780()
    executive = Executive(machine, profile, seed=seed)
    executive.boot()
    executive.run(instructions)
    return Measurement.capture(profile.name, machine)


def assert_identical(batch: Measurement, scalar: Measurement) -> None:
    """Field-for-field equality over everything a Measurement holds."""
    assert batch.name == scalar.name
    assert batch.cycles == scalar.cycles
    assert list(batch.histogram.nonstalled) == \
        list(scalar.histogram.nonstalled)
    assert list(batch.histogram.stalled) == list(scalar.histogram.stalled)
    for name in scalar.tracer._SCALARS + scalar.tracer._COUNTERS:
        assert getattr(batch.tracer, name) == \
            getattr(scalar.tracer, name), f"tracer.{name}"
    for name in _MEMORY_FIELDS:
        assert getattr(batch.memory, name) == \
            getattr(scalar.memory, name), f"memory.{name}"


@pytest.fixture(scope="module")
def five_workload_batch():
    """All five workloads, two fused budgets each, one batch run."""
    lanes = []
    for profile in STANDARD_PROFILES:
        lanes.append(LaneSpec(profile.name, PREFIX, 1984))
        lanes.append(LaneSpec(profile.name, BUDGET, 1984))
    results = run_lanes(lanes)
    return {(r.spec.workload, r.spec.instructions): r.measurement
            for r in results}


class TestFiveWorkloads:
    @pytest.mark.parametrize("profile", STANDARD_PROFILES,
                             ids=lambda p: p.name)
    @pytest.mark.parametrize("target", (PREFIX, BUDGET))
    def test_lane_matches_scalar_run(self, five_workload_batch,
                                     profile, target):
        batch = five_workload_batch[(profile.name, target)]
        assert_identical(batch,
                         scalar_measure(profile, target, 1984))


class TestComposite:
    def test_batched_standard_runs_compose_identically(self):
        from repro.workloads.parallel import run_standard_batch

        batched = run_standard_batch(600, seed=7)
        scalar = {p.name: scalar_measure(p, 600, 7)
                  for p in STANDARD_PROFILES}
        assert list(batched) == [p.name for p in STANDARD_PROFILES]
        for name, measurement in batched.items():
            assert_identical(measurement, scalar[name])
        ours = composite(list(batched.values()))
        theirs = composite(list(scalar.values()))
        assert ours.cycles == theirs.cycles
        assert list(ours.histogram.nonstalled) == \
            list(theirs.histogram.nonstalled)
        assert list(ours.histogram.stalled) == \
            list(theirs.histogram.stalled)

    def test_engine_facade_memoises_batch_results(self):
        from repro.workloads import engine

        results = engine.run_standard_experiments(
            instructions=500, seed=11, engine="batch")
        for profile in STANDARD_PROFILES:
            assert engine._CACHE[(profile.name, 500, 11, "vax780")] is \
                results[profile.name]
            assert_identical(results[profile.name],
                             scalar_measure(profile, 500, 11))


class TestQuantumInvariance:
    def test_odd_quantum_changes_nothing(self):
        """The lockstep pause points are invisible to the machine."""
        lanes = [LaneSpec(TIMESHARING_RESEARCH.name, PREFIX, 1984),
                 LaneSpec(TIMESHARING_RESEARCH.name, BUDGET, 1984)]
        coarse = run_lanes(lanes)
        fine = run_lanes(lanes, quantum=7)
        for a, b in zip(coarse, fine):
            assert_identical(a.measurement, b.measurement)


class TestGatedLane:
    def test_gated_run_is_bit_identical(self):
        scalar = scalar_measure(GATED, 3000, 3)
        # The profile earns its keep: the gate really closed.
        assert scalar.tracer.gated_off_cycles > 0
        result = run_lanes([LaneSpec(GATED.name, 3000, 3)],
                           profiles=[GATED])[0]
        assert_identical(result.measurement, scalar)


class TestErrorIdentity:
    def scalar_error(self, profile, instructions, seed) -> str:
        machine = VAX780()
        executive = Executive(machine, profile, seed=seed)
        executive.boot()
        with pytest.raises(RuntimeError) as exc:
            executive.run(instructions)
        return str(exc.value)

    def test_cycle_limited_lane_reproduces_scalar_error(self):
        lanes = [LaneSpec(LIMITED.name, 1600, 3),
                 LaneSpec(LIMITED.name, 1900, 3)]
        results = run_lanes(lanes, profiles=[LIMITED], strict=False)
        # The short lane captured cleanly before the fatal block...
        assert results[0].ok
        assert_identical(results[0].measurement,
                         scalar_measure(LIMITED, 1600, 3))
        # ...and the long lane failed with the scalar message verbatim.
        expected = self.scalar_error(LIMITED, 1900, 3)
        assert expected.startswith("cycle limit hit")
        assert results[1].error == expected
        assert results[1].measurement is None
        assert not results[1].ok

    def test_strict_mode_raises_the_lane_error(self):
        lanes = [LaneSpec(LIMITED.name, 1900, 3)]
        with pytest.raises(RuntimeError, match="cycle limit hit"):
            run_lanes(lanes, profiles=[LIMITED])

    def test_halted_machine_fails_all_remaining_lanes(self, monkeypatch):
        real_step = VAX780.step

        def step(self):
            real_step(self)
            if self.tracer.instructions >= 150:
                self.halted = True

        monkeypatch.setattr(VAX780, "step", step)
        name = TIMESHARING_RESEARCH.name
        lanes = [LaneSpec(name, 100, 1984), LaneSpec(name, 300, 1984),
                 LaneSpec(name, 500, 1984)]
        results = run_lanes(lanes, strict=False)
        assert results[0].ok
        assert results[1].error == HALTED_ERROR
        assert results[2].error == HALTED_ERROR
        # The scalar engine says the same thing under the same halt.
        assert self.scalar_error(TIMESHARING_RESEARCH, 300,
                                 1984) == HALTED_ERROR
