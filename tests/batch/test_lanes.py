"""Lane planning, struct-of-arrays state, the sink, engine validation."""

import pytest

from repro.batch import (BatchHistogramSink, BatchRunner, ENGINES,
                         EngineError, LaneArrays, LaneSpec,
                         plan_cohorts, validate_engine)


class TestLaneSpec:
    def test_overrides_normalise_to_sorted_pairs(self):
        spec = LaneSpec("w", 10, 1, {"tb_rows": 64, "cache_kb": 4})
        assert spec.overrides == (("cache_kb", 4), ("tb_rows", 64))

    def test_override_order_does_not_split_cohorts(self):
        a = LaneSpec("w", 10, 1, (("x", 1), ("y", 2)))
        b = LaneSpec("w", 20, 1, (("y", 2), ("x", 1)))
        assert a.cohort_key() == b.cohort_key()

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="positive budget"):
            LaneSpec("w", 0, 1)

    def test_label_mentions_everything(self):
        spec = LaneSpec("w", 10, 5, {"tb_rows": 64})
        assert spec.label() == "w n=10 seed=5 [tb_rows=64]"


class TestPlanCohorts:
    def test_budget_only_variants_fuse(self):
        lanes = [LaneSpec("w", 100, 1), LaneSpec("w", 300, 1),
                 LaneSpec("w", 200, 1)]
        cohorts = plan_cohorts(lanes)
        assert len(cohorts) == 1
        assert cohorts[0].targets == (100, 200, 300)
        assert cohorts[0].lanes_at(200) == (2,)

    def test_duplicate_lanes_share_one_capture(self):
        lanes = [LaneSpec("w", 100, 1), LaneSpec("w", 100, 1)]
        cohorts = plan_cohorts(lanes)
        assert len(cohorts) == 1
        assert cohorts[0].targets == (100,)
        assert cohorts[0].lanes_at(100) == (0, 1)

    def test_workload_seed_and_params_split(self):
        lanes = [LaneSpec("w", 100, 1),
                 LaneSpec("v", 100, 1),
                 LaneSpec("w", 100, 2),
                 LaneSpec("w", 100, 1, {"tb_rows": 64})]
        assert len(plan_cohorts(lanes)) == 4

    def test_first_seen_order_preserved(self):
        lanes = [LaneSpec("b", 100, 1), LaneSpec("a", 100, 1),
                 LaneSpec("b", 200, 1)]
        assert [c.workload for c in plan_cohorts(lanes)] == ["b", "a"]


class _FakeEBox:
    def __init__(self, pc, now):
        self.pc, self.now = pc, now


class _FakeTracer:
    def __init__(self, instructions):
        self.instructions = instructions


class _FakeMachine:
    def __init__(self, pc, now, instructions):
        self.ebox = _FakeEBox(pc, now)
        self.tracer = _FakeTracer(instructions)


class TestLaneArrays:
    def test_vectorized_reductions(self):
        arrays = LaneArrays(3)
        arrays.update(0, _FakeMachine(0x200, 900, 100), target=100,
                      cycle_limit=40_000, done=True, failed=False)
        arrays.update(1, _FakeMachine(0x300, 500, 60), target=200,
                      cycle_limit=80_000, done=False, failed=False)
        arrays.update(2, _FakeMachine(0x400, 700, 10), target=50,
                      cycle_limit=20_000, done=False, failed=True)
        assert arrays.live() == 1
        assert list(arrays.live_mask()) == [False, True, False]
        assert arrays.remaining() == 140
        snap = arrays.snapshot()
        assert snap["pc"] == [0x200, 0x300, 0x400]
        assert snap["now"] == [900, 500, 700]
        assert snap["done"] == [1, 0, 0]
        assert snap["failed"] == [0, 0, 1]


class _FakeBoard:
    """Two tiny count sets standing in for a live HistogramBoard."""

    def __init__(self, size, bump):
        self.nonstalled = [bump + i for i in range(size)]
        self.stalled = [2 * bump + i for i in range(size)]


class TestBatchHistogramSink:
    def test_rows_read_back_and_composite_sums(self):
        sink = BatchHistogramSink(2, size=8)
        sink.capture(0, _FakeBoard(8, 1))
        sink.capture(1, _FakeBoard(8, 5))
        assert list(sink.histogram(0).nonstalled) == \
            [1 + i for i in range(8)]
        total = sink.composite()
        assert list(total.nonstalled) == [6 + 2 * i for i in range(8)]
        assert list(total.stalled) == [12 + 2 * i for i in range(8)]

    def test_double_capture_rejected(self):
        sink = BatchHistogramSink(1, size=4)
        sink.capture(0, _FakeBoard(4, 1))
        with pytest.raises(ValueError, match="captured twice"):
            sink.capture(0, _FakeBoard(4, 2))

    def test_uncaptured_rows_rejected(self):
        sink = BatchHistogramSink(2, size=4)
        with pytest.raises(ValueError, match="not captured"):
            sink.histogram(1)
        with pytest.raises(ValueError, match="no captured rows"):
            sink.composite()


class TestValidateEngine:
    def test_none_means_scalar(self):
        assert validate_engine(None) == "scalar"

    @pytest.mark.parametrize("name", ENGINES)
    def test_known_names_pass_through(self, name):
        assert validate_engine(name) == name

    def test_unknown_name_lists_the_choices(self):
        with pytest.raises(EngineError) as exc:
            validate_engine("turbo")
        message = str(exc.value)
        assert "unknown engine 'turbo'" in message
        for name in ENGINES:
            assert name in message

    def test_engine_error_is_a_value_error(self):
        assert issubclass(EngineError, ValueError)

    def test_restricted_choices(self):
        with pytest.raises(EngineError, match="scalar, batch"):
            validate_engine("auto", choices=("scalar", "batch"))


class TestBatchRunnerValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one lane"):
            BatchRunner([])

    def test_nonpositive_quantum_rejected(self):
        with pytest.raises(ValueError, match="quantum"):
            BatchRunner([LaneSpec("timesharing-research", 10, 1)],
                        quantum=0)

    def test_unknown_workload_lists_the_valid_ones(self):
        with pytest.raises(ValueError, match="unknown workload 'nope'"):
            BatchRunner([LaneSpec("nope", 10, 1)])
