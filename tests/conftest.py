"""Suite-wide fixtures.

``smoke_sweep`` runs the explore smoke spec cold exactly once per
session; the explore, sensitivity and report tests all read from it (a
sweep is five workloads x three points, so sharing it keeps the suite
fast).
"""

import pytest

from repro.explore import ResultStore, SMOKE, run_sweep


@pytest.fixture(scope="session")
def smoke_store(tmp_path_factory):
    return ResultStore(tmp_path_factory.mktemp("explore-store"))


@pytest.fixture(scope="session")
def smoke_sweep(smoke_store):
    """The smoke spec, simulated cold into the session store."""
    return run_sweep(SMOKE, store=smoke_store, jobs=1)
