"""Semantics of the extended opcode subset (word/byte multiply-divide,
D_floating, PSW operations, INDEX, ADAWI, ASHQ, MOVTC, conversions)."""

from tests.helpers import run, regs


class TestSizedMulDiv:
    def test_mulw3(self):
        m = run("movl #300, r0\nmulw3 #100, r0, r1\nhalt")
        assert regs(m)[1] & 0xFFFF == 30000 & 0xFFFF

    def test_mulb2_overflow_sets_v(self):
        m = run("""
            movl #100, r0
            mulb2 #100, r0
            bvs overflowed
            halt
        overflowed:
            movl #1, r5
            halt
        """)
        assert regs(m)[5] == 1  # 10000 does not fit a byte

    def test_divw3(self):
        m = run("movl #1000, r0\ndivw3 #30, r0, r1\nhalt")
        assert regs(m)[1] & 0xFFFF == 33

    def test_divb3_truncates_toward_zero(self):
        m = run("""
            movl #-7, r0
            divb3 #2, r0, r1
            halt
        """)
        assert regs(m)[1] & 0xFF == 0xFD  # -3


class TestDFloat:
    def test_cvtld_cvtdl_roundtrip(self):
        m = run("cvtld #55, r2\ncvtdl r2, r6\nhalt")
        assert regs(m)[6] == 55

    def test_addd3(self):
        m = run("""
            cvtld #20, r2
            cvtld #22, r4
            addd3 r2, r4, r6
            cvtdl r6, r0
            halt
        """)
        assert regs(m)[0] == 42

    def test_divd2(self):
        m = run("""
            cvtld #4, r2
            cvtld #84, r4
            divd2 r2, r4
            cvtdl r4, r0
            halt
        """)
        assert regs(m)[0] == 21

    def test_cmpd(self):
        m = run("""
            cvtld #7, r2
            cvtld #7, r4
            cmpd r2, r4
            beql same
            halt
        same:
            movl #1, r0
            halt
        """)
        assert regs(m)[0] == 1

    def test_mnegd_tstd(self):
        m = run("""
            cvtld #3, r2
            mnegd r2, r4
            tstd r4
            blss negative
            halt
        negative:
            movl #1, r0
            halt
        """)
        assert regs(m)[0] == 1

    def test_cvtfd_cvtdf(self):
        m = run("""
            cvtlf #9, r2
            cvtfd r2, r4
            cvtdf r4, r6
            cvtfl r6, r0
            halt
        """)
        assert regs(m)[0] == 9


class TestFloatConversions:
    def test_cvtfb(self):
        m = run("cvtlf #42, r2\ncvtfb r2, r0\nhalt")
        assert regs(m)[0] & 0xFF == 42

    def test_cvtbf(self):
        m = run("movl #17, r0\ncvtbf r0, r2\ncvtfl r2, r1\nhalt")
        assert regs(m)[1] == 17

    def test_cvtrfl_rounds(self):
        # 7/2 = 3.5 -> CVTRFL rounds to 4, CVTFL truncates to 3.
        m = run("""
            cvtlf #7, r2
            cvtlf #2, r3
            divf2 r3, r2
            cvtrfl r2, r0
            cvtfl r2, r1
            halt
        """)
        assert regs(m)[0] == 4
        assert regs(m)[1] == 3


class TestPSWOps:
    def test_bispsw_sets_condition_bits(self):
        m = run("""
            clrl r0             ; Z set by CLRL
            bicpsw #^x000F      ; clear all condition codes
            beql was_equal      ; Z now clear: not taken
            movl #1, r1
            halt
        was_equal:
            movl #2, r1
            halt
        """)
        assert regs(m)[1] == 1

    def test_bispsw_forces_branch(self):
        m = run("""
            movl #1, r0         ; Z clear
            bispsw #^x0004      ; set Z
            beql taken
            halt
        taken:
            movl #2, r1
            halt
        """)
        assert regs(m)[1] == 2


class TestIndexInstruction:
    def test_index_in_range(self):
        # entry = (indexin + subscript) * size
        m = run("index #3, #0, #9, #8, #0, r6\nhalt")
        assert regs(m)[6] == 24

    def test_index_accumulates(self):
        m = run("index #2, #0, #9, #4, #10, r6\nhalt")
        assert regs(m)[6] == 48  # (10 + 2) * 4


class TestAdawi:
    def test_adds_word_in_memory(self):
        m = run("""
            adawi #5, @#counter
            adawi #3, @#counter
            movzwl @#counter, r0
            halt
            .align 4
        counter:
            .word 100
        """)
        assert regs(m)[0] == 108


class TestAshq:
    def test_quad_shift_left(self):
        m = run("""
            movl #1, r2
            clrl r3
            ashq #33, r2, r4
            halt
        """)
        assert regs(m)[4] == 0
        assert regs(m)[5] == 2  # bit 33 set

    def test_quad_shift_right(self):
        m = run("""
            clrl r2
            movl #1, r3          ; quad value 1<<32
            ashq #-32, r2, r4
            halt
        """)
        assert regs(m)[4] == 1


class TestMovtc:
    def test_translates_through_table(self):
        m = run("""
            movtc #3, @#src, #0, @#table, #3, @#dst
            movb @#dst, r6
            halt
        src:
            .byte 0, 1, 2
        dst:
            .space 4
            .align 4
        table:
            .byte ^x41, ^x42, ^x43, ^x44   ; 0->A, 1->B, 2->C
            .space 252
        """)
        assert regs(m)[6] == 0x41

    def test_fill_beyond_source(self):
        m = run("""
            movtc #1, @#src, #^x2E, @#table, #3, @#dst
            movb @#dst+2, r6
            halt
        src:
            .byte 0
        dst:
            .space 4
            .align 4
        table:
            .byte ^x5A
            .space 255
        """)
        assert regs(m)[6] == 0x2E  # fill character


class TestConditionCodeDetails:
    def test_cmp_clears_v(self):
        m = run("""
            movl #^x7FFFFFFF, r0
            addl2 #1, r0        ; sets V
            cmpl r0, r0         ; CMP clears V
            bvc clear
            halt
        clear:
            movl #1, r1
            halt
        """)
        assert regs(m)[1] == 1

    def test_tst_clears_c(self):
        m = run("""
            clrl r0
            subl2 #1, r0        ; borrow: C set
            tstl r0             ; TST clears C
            bcc carry_clear
            halt
        carry_clear:
            movl #1, r1
            halt
        """)
        assert regs(m)[1] == 1

    def test_incl_preserves_semantics_at_wraparound(self):
        m = run("""
            movl #^xFFFFFFFF, r0
            incl r0
            beql wrapped
            halt
        wrapped:
            movl #1, r1
            halt
        """)
        assert regs(m)[0] == 0
        assert regs(m)[1] == 1

    def test_mnegl_of_zero_clears_nzc(self):
        m = run("""
            clrl r0
            mnegl r0, r1
            beql zero
            halt
        zero:
            bcc noborrow
            halt
        noborrow:
            movl #1, r2
            halt
        """)
        assert regs(m)[2] == 1
