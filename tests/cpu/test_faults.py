"""Page faults, exception delivery and kernel restart behaviour."""

from repro.asm import assemble_text
from repro.cpu.machine import SCB_PAGE_FAULT, VAX780
from repro.vm.address import S0_BASE
from tests.helpers import CODE_BASE, regs


def boot_with_fault_handler(user_code: str):
    """Boot a machine with a minimal page-fault handler installed.

    The handler pops the fault VA, marks the page resident via the PFFIX
    hook, and REIs to restart the faulting instruction.
    """
    machine = VAX780()
    machine.map_s0_identity()

    handler = assemble_text("""
    handler:
        movl (sp)+, r10      ; fault parameter (the VA)
        incl @#counter
        mtpr r10, #63        ; PR_PFFIX: make the page resident
        rei
    counter:
        .long 0
    """, base=S0_BASE + 0x8000)
    machine.load_s0_image(handler)

    scb_pa = 0x7000
    machine.scb_base = scb_pa
    machine.ebox.scb_base = scb_pa
    machine.mem.debug_write(scb_pa + SCB_PAGE_FAULT,
                            handler.address_of("handler"), 4)

    image = assemble_text(user_code, base=CODE_BASE)
    machine.load_s0_image(image)
    machine.ebox.psl.current_mode = 0
    machine.ebox.registers[14] = CODE_BASE - 0x100
    machine.ebox.pc = image.entry
    machine.ebox.ib.flush(image.entry)
    return machine, handler


class TestPageFaults:
    def test_data_fault_serviced_and_restarted(self):
        machine, handler = boot_with_fault_handler("""
            movl @#^x80060004, r0
            halt
        """)
        # Make the target page non-resident.
        machine.translator.set_valid(0x80060004, False)
        machine.mem.debug_write(0x60004, 4242, 4)
        machine.run(100)
        assert machine.halted
        assert regs(machine)[0] == 4242
        assert machine.tracer.page_faults == 1
        # The handler really ran (its counter incremented).
        counter_pa = handler.address_of("counter") - S0_BASE
        assert machine.mem.debug_read(counter_pa, 4) == 1

    def test_fault_restores_register_side_effects(self):
        machine, _ = boot_with_fault_handler("""
            moval @#^x80060000, r2
            movl (r2)+, r0
            halt
        """)
        machine.translator.set_valid(0x80060000, False)
        machine.mem.debug_write(0x60000, 7, 4)
        machine.run(100)
        assert machine.halted
        assert regs(machine)[0] == 7
        # (r2)+ executed exactly once architecturally despite the restart.
        assert regs(machine)[2] == 0x80060004

    def test_istream_fault_on_branch_target(self):
        machine, _ = boot_with_fault_handler(f"""
            brw target
            .space {0x600 - 16}
        target:
            movl #5, r0
            halt
        """)
        target_va = CODE_BASE + 0x600 - 13
        src = assemble_text(f"""
            brw target
            .space {0x600 - 16}
        target:
            movl #5, r0
            halt
        """, base=CODE_BASE)
        target_va = src.address_of("target")
        machine.translator.set_valid(target_va, False)
        machine.run(300)
        assert machine.halted
        assert regs(machine)[0] == 5
        assert machine.tracer.page_faults >= 1

    def test_exception_counted_in_tracer(self):
        machine, _ = boot_with_fault_handler("""
            movl @#^x80060000, r0
            halt
        """)
        machine.translator.set_valid(0x80060000, False)
        machine.run(100)
        assert machine.tracer.exceptions == 1


class TestInterruptDelivery:
    def test_interrupt_vectors_to_handler(self):
        machine = VAX780()
        machine.map_s0_identity()
        code = assemble_text("""
        start:
            movl #1, r0
        spin:
            brb spin
        handler:
            movl #2, r1
            halt
        """, base=CODE_BASE)
        machine.load_s0_image(code)
        scb_pa = 0x7000
        machine.scb_base = scb_pa
        machine.ebox.scb_base = scb_pa
        machine.mem.debug_write(scb_pa + 0xC0,
                                code.address_of("handler"), 4)
        machine.ebox.psl.current_mode = 0
        machine.ebox.registers[14] = CODE_BASE - 0x100
        machine.ebox.pc = code.entry
        machine.ebox.ib.flush(code.entry)
        machine.run(5)
        machine.post_interrupt(ipl=24, scb_offset=0xC0)
        machine.run(20)
        assert machine.halted
        assert regs(machine)[1] == 2
        assert machine.tracer.interrupts == 1
        # Delivery raised the IPL to the device's level.
        assert machine.ebox.psl.ipl == 24

    def test_masked_interrupt_not_delivered(self):
        machine = VAX780()
        machine.map_s0_identity()
        code = assemble_text("""
            mtpr #31, #18     ; IPL = 31: everything masked
            movl #1, r0
            movl #2, r1
            halt
        """, base=CODE_BASE)
        machine.load_s0_image(code)
        machine.ebox.psl.current_mode = 0
        machine.ebox.psl.ipl = 31      # masked from the start
        machine.ebox.registers[14] = CODE_BASE - 0x100
        machine.ebox.pc = code.entry
        machine.ebox.ib.flush(code.entry)
        machine.post_interrupt(ipl=20, scb_offset=0xC0)
        machine.run(10)
        assert machine.halted          # never diverted
        assert machine.tracer.interrupts == 0

    def test_software_interrupt_via_sirr(self):
        machine = VAX780()
        machine.map_s0_identity()
        code = assemble_text("""
            mtpr #3, #20      ; request software interrupt level 3
            movl #1, r0
            halt
        handler:
            movl #9, r1
            halt
        """, base=CODE_BASE)
        machine.load_s0_image(code)
        scb_pa = 0x7000
        machine.scb_base = scb_pa
        machine.ebox.scb_base = scb_pa
        machine.mem.debug_write(scb_pa + 0x80 + 4 * 3,
                                code.address_of("handler"), 4)
        machine.ebox.psl.current_mode = 0
        machine.ebox.registers[14] = CODE_BASE - 0x100
        machine.ebox.pc = code.entry
        machine.ebox.ib.flush(code.entry)
        machine.run(20)
        assert machine.halted
        assert regs(machine)[1] == 9
        assert machine.tracer.software_interrupt_requests == 1
