"""Unit tests for the instruction buffer / I-Fetch model."""

from repro.cpu.ibuffer import InstructionBuffer
from repro.mem.subsystem import MemorySubsystem
from repro.params import VAX780
from repro.vm.address import S0_BASE
from repro.vm.tb import TranslationBuffer


class FakeTranslator:
    def pte_address(self, va):
        return 0


def make_ib(prefill_tb=True):
    mem = MemorySubsystem(VAX780)
    tb = TranslationBuffer(VAX780.tb_entries, VAX780.tb_ways)
    if prefill_tb:
        for page in range(16):
            tb.insert(S0_BASE + (page << 9), page)
    ib = InstructionBuffer(mem, tb, FakeTranslator(), VAX780)
    ib.flush(S0_BASE)
    return ib, mem, tb


class TestFillEngine:
    def test_fill_starts_empty(self):
        ib, _, _ = make_ib()
        assert ib.count == 0

    def test_fill_delivers_after_latency(self):
        ib, _, _ = make_ib()
        now = 0
        # issue on first tick; cold cache -> data at cycle 6.
        for now in range(1, 10):
            ib.tick(now, port_free=True)
            if ib.count:
                break
        assert ib.count > 0
        assert now >= 6

    def test_fill_respects_capacity(self):
        ib, _, _ = make_ib()
        for now in range(1, 200):
            ib.tick(now, port_free=True)
        assert ib.count <= ib.capacity == 8

    def test_no_fill_when_port_busy(self):
        ib, _, _ = make_ib()
        for now in range(1, 50):
            ib.tick(now, port_free=False)
        assert ib.count == 0
        assert ib.references == 0

    def test_partial_delivery_when_nearly_full(self):
        ib, _, _ = make_ib()
        for now in range(1, 100):
            ib.tick(now, port_free=True)
        # Drain one byte; the next fill can deliver at most... the free room.
        ib.take(1)
        refs_before = ib.references
        bytes_before = ib.bytes_delivered
        for now in range(100, 140):
            ib.tick(now, port_free=True)
            if ib.references > refs_before and ib.count == 8:
                break
        delivered = ib.bytes_delivered - bytes_before
        assert 0 < delivered <= 4

    def test_flush_resets(self):
        ib, _, _ = make_ib()
        for now in range(1, 50):
            ib.tick(now, port_free=True)
        ib.flush(S0_BASE + 0x100)
        assert ib.count == 0
        assert ib.pending is None
        assert ib.prefetch_va == S0_BASE + 0x100

    def test_take_underflow_raises(self):
        ib, _, _ = make_ib()
        try:
            ib.take(1)
        except AssertionError:
            return
        raise AssertionError("expected underflow assertion")


class TestTBInteraction:
    def test_tb_miss_blocks_filling(self):
        ib, _, tb = make_ib(prefill_tb=False)
        for now in range(1, 30):
            ib.tick(now, port_free=True)
        assert ib.tb_miss_va == S0_BASE
        assert ib.count == 0

    def test_clear_tb_miss_resumes(self):
        ib, _, tb = make_ib(prefill_tb=False)
        for now in range(1, 10):
            ib.tick(now, port_free=True)
        tb.insert(S0_BASE, 0)
        ib.clear_tb_miss()
        for now in range(10, 40):
            ib.tick(now, port_free=True)
        assert ib.count > 0

    def test_i_stream_misses_counted(self):
        ib, _, tb = make_ib(prefill_tb=False)
        for now in range(1, 5):
            ib.tick(now, port_free=True)
        assert tb.stats.i_misses == 1


class TestDeliveryStatistics:
    def test_bytes_per_reference_under_four(self):
        """The repeated-reference behaviour of §4.1: the IB re-references
        longwords it only partially accepted, so bytes/ref < 4 under a
        byte-at-a-time consumer."""
        ib, _, _ = make_ib()
        # Fill up, then consume one byte every third cycle: the IB stays
        # nearly full, so fills re-reference partially-taken longwords.
        for now in range(1, 40):
            ib.tick(now, port_free=True)
        for now in range(40, 700):
            if now % 3 == 0 and ib.count >= 1:
                ib.take(1)
            ib.tick(now, port_free=True)
        assert ib.references > 0
        assert ib.bytes_delivered / ib.references < 4.0
