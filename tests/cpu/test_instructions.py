"""Architectural semantics of the simulated VAX subset, per family.

Each test boots a small kernel-mode program and checks register/memory
state at HALT.  These are the ground-truth checks everything timing-
related builds on.
"""

from tests.helpers import run, regs


class TestMoves:
    def test_movl_immediate(self):
        m = run("movl #1234567, r0\nhalt")
        assert regs(m)[0] == 1234567

    def test_movb_truncates(self):
        m = run("movl #^xAABBCCDD, r0\nmovb r0, r1\nhalt")
        assert regs(m)[1] & 0xFF == 0xDD

    def test_movb_merges_into_register(self):
        m = run("movl #^x11223344, r1\nmovb #5, r1\nhalt")
        assert regs(m)[1] == 0x11223305

    def test_movzbl(self):
        m = run("movl #^xFFFFFFFF, r0\nmovzbl r0, r1\nhalt")
        assert regs(m)[1] == 0xFF

    def test_cvtlb_signed(self):
        m = run("movl #^x1FF, r0\ncvtlb r0, r1\nhalt")
        assert regs(m)[1] & 0xFF == 0xFF

    def test_cvtbl_sign_extends(self):
        m = run("movl #^xFF, r0\ncvtbl r0, r1\nhalt")
        assert regs(m)[1] == 0xFFFFFFFF

    def test_mcoml(self):
        m = run("movl #0, r0\nmcoml r0, r1\nhalt")
        assert regs(m)[1] == 0xFFFFFFFF

    def test_mnegl(self):
        m = run("movl #5, r0\nmnegl r0, r1\nhalt")
        assert regs(m)[1] == 0xFFFFFFFB

    def test_clrl(self):
        m = run("movl #99, r3\nclrl r3\nhalt")
        assert regs(m)[3] == 0

    def test_movq(self):
        m = run("""
            movl #1, r0
            movl #2, r1
            movq r0, r4
            halt
        """)
        assert regs(m)[4] == 1 and regs(m)[5] == 2

    def test_moval(self):
        m = run("moval @#^x80003000, r2\nhalt")
        assert regs(m)[2] == 0x80003000

    def test_pushl_and_memory(self):
        m = run("""
            movl #42, r0
            pushl r0
            movl (sp), r1
            halt
        """)
        assert regs(m)[1] == 42


class TestArithmetic:
    def test_addl2(self):
        m = run("movl #5, r0\naddl2 #7, r0\nhalt")
        assert regs(m)[0] == 12

    def test_subl3(self):
        m = run("movl #10, r0\nsubl3 #3, r0, r1\nhalt")
        assert regs(m)[1] == 7

    def test_incl_decl(self):
        m = run("movl #5, r0\nincl r0\nincl r0\ndecl r0\nhalt")
        assert regs(m)[0] == 6

    def test_addl2_memory_dest(self):
        m = run("""
            movl #10, @#var
            addl2 #5, @#var
            movl @#var, r0
            halt
        var: .long 0
        """)
        assert regs(m)[0] == 15

    def test_adwc_uses_carry(self):
        m = run("""
            movl #^xFFFFFFFF, r0
            addl2 #1, r0          ; sets C
            movl #10, r1
            adwc #0, r1           ; r1 += 0 + C
            halt
        """)
        assert regs(m)[1] == 11

    def test_ashl_left(self):
        m = run("movl #3, r1\nashl #4, r1, r2\nhalt")
        assert regs(m)[2] == 48

    def test_ashl_right(self):
        m = run("movl #48, r1\nashl #-4, r1, r2\nhalt")
        assert regs(m)[2] == 3

    def test_rotl(self):
        m = run("movl #^x80000001, r1\nrotl #1, r1, r2\nhalt")
        assert regs(m)[2] == 0x00000003

    def test_mull3(self):
        m = run("movl #6, r0\nmull3 #7, r0, r1\nhalt")
        assert regs(m)[1] == 42

    def test_divl3(self):
        m = run("movl #45, r0\ndivl3 #7, r0, r1\nhalt")
        assert regs(m)[1] == 6  # truncates toward zero

    def test_emul(self):
        m = run("""
            movl #100000, r0
            emul r0, r0, #0, r2
            halt
        """)
        product = regs(m)[2] | (regs(m)[3] << 32)
        assert product == 100000 * 100000

    def test_ediv(self):
        m = run("""
            movl #100, r2
            clrl r3
            ediv #7, r2, r4, r5
            halt
        """)
        assert regs(m)[4] == 14 and regs(m)[5] == 2


class TestBoolean:
    def test_bisl2(self):
        m = run("movl #^x0F, r0\nbisl2 #^xF0, r0\nhalt")
        assert regs(m)[0] == 0xFF

    def test_bicl3(self):
        m = run("movl #^xFF, r0\nbicl3 #^x0F, r0, r1\nhalt")
        assert regs(m)[1] == 0xF0

    def test_xorl2(self):
        m = run("movl #^xFF, r0\nxorl2 #^x0F, r0\nhalt")
        assert regs(m)[0] == 0xF0


class TestBranches:
    def test_beql_taken(self):
        m = run("""
            clrl r0
            tstl r0
            beql yes
            movl #1, r1
            halt
        yes:
            movl #2, r1
            halt
        """)
        assert regs(m)[1] == 2

    def test_bneq_not_taken(self):
        m = run("""
            clrl r0
            tstl r0
            bneq yes
            movl #1, r1
            halt
        yes:
            movl #2, r1
            halt
        """)
        assert regs(m)[1] == 1

    def test_unsigned_branch(self):
        m = run("""
            movl #^xFFFFFFFF, r0
            cmpl r0, #1
            bgtru big
            movl #1, r1
            halt
        big:
            movl #2, r1
            halt
        """)
        assert regs(m)[1] == 2  # 0xFFFFFFFF > 1 unsigned

    def test_signed_branch(self):
        m = run("""
            movl #^xFFFFFFFF, r0
            cmpl r0, #1
            blss small
            movl #1, r1
            halt
        small:
            movl #2, r1
            halt
        """)
        assert regs(m)[1] == 2  # -1 < 1 signed

    def test_sobgtr_loop_count(self):
        m = run("""
            movl #5, r0
            clrl r1
        loop:
            incl r1
            sobgtr r0, loop
            halt
        """)
        assert regs(m)[1] == 5

    def test_aoblss(self):
        m = run("""
            clrl r0
            clrl r1
        loop:
            incl r1
            aoblss #4, r0, loop
            halt
        """)
        assert regs(m)[1] == 4

    def test_acbl(self):
        m = run("""
            movl #1, r0
            clrl r1
        loop:
            incl r1
            acbl #10, #3, r0, loop
            halt
        """)
        # r0: 1 -> 4 -> 7 -> 10 (each <= 10 taken), then 13 stops.
        assert regs(m)[1] == 4

    def test_blbs(self):
        m = run("""
            movl #7, r0
            blbs r0, odd
            movl #1, r1
            halt
        odd:
            movl #2, r1
            halt
        """)
        assert regs(m)[1] == 2

    def test_jsb_rsb(self):
        m = run("""
            jsb @#sub
            movl #1, r1
            halt
        sub:
            movl #9, r2
            rsb
        """)
        assert regs(m)[1] == 1 and regs(m)[2] == 9

    def test_bsbb(self):
        m = run("""
            bsbb sub
            halt
        sub:
            movl #3, r2
            rsb
        """)
        assert regs(m)[2] == 3

    def test_jmp(self):
        m = run("""
            jmp @#target
            movl #1, r1
            halt
        target:
            movl #2, r1
            halt
        """)
        assert regs(m)[1] == 2

    def test_casel_dispatch(self):
        m = run("""
            movl #1, r0
            casel r0, #0, #2, (c0, c1, c2)
            movl #99, r1
            halt
        c0: movl #10, r1
            halt
        c1: movl #11, r1
            halt
        c2: movl #12, r1
            halt
        """)
        assert regs(m)[1] == 11

    def test_casel_out_of_range_falls_through(self):
        m = run("""
            movl #9, r0
            casel r0, #0, #1, (c0, c1)
            movl #99, r1
            halt
        c0: movl #10, r1
            halt
        c1: movl #11, r1
            halt
        """)
        assert regs(m)[1] == 99

    def test_brw_long_range(self):
        m = run("""
            brw far
            .space 200
        far:
            movl #7, r1
            halt
        """)
        assert regs(m)[1] == 7


class TestFieldInstructions:
    def test_extzv_register(self):
        m = run("movl #^xABCD, r3\nextzv #4, #8, r3, r1\nhalt")
        assert regs(m)[1] == 0xBC

    def test_extv_sign_extends(self):
        m = run("movl #^xF0, r3\nextv #4, #4, r3, r1\nhalt")
        assert regs(m)[1] == 0xFFFFFFFF

    def test_insv_register(self):
        m = run("clrl r3\nmovl #^xF, r0\ninsv r0, #4, #4, r3\nhalt")
        assert regs(m)[3] == 0xF0

    def test_extzv_memory(self):
        m = run("""
            extzv #8, #8, @#field, r1
            halt
        field: .long ^x00BB00
        """)
        assert regs(m)[1] == 0xBB

    def test_insv_memory(self):
        m = run("""
            movl #^xAA, r0
            insv r0, #8, #8, @#field
            movl @#field, r1
            halt
        field: .long 0
        """)
        assert regs(m)[1] == 0xAA00

    def test_ffs_finds_bit(self):
        m = run("movl #^x10, r3\nffs #0, #32, r3, r1\nhalt")
        assert regs(m)[1] == 4

    def test_ffs_not_found_sets_z(self):
        m = run("""
            clrl r3
            ffs #0, #32, r3, r1
            beql notfound
            halt
        notfound:
            movl #1, r2
            halt
        """)
        assert regs(m)[2] == 1

    def test_bbs_taken(self):
        m = run("""
            movl #4, r3
            bbs #2, r3, set
            movl #1, r1
            halt
        set:
            movl #2, r1
            halt
        """)
        assert regs(m)[1] == 2

    def test_bbss_sets_after_test(self):
        m = run("""
            clrl r3
            bbss #0, r3, was_set
            movl #1, r1     ; not taken: bit was clear
            halt
        was_set:
            movl #2, r1
            halt
        """)
        assert regs(m)[1] == 1
        assert regs(m)[3] == 1  # bit set as side effect

    def test_cmpv(self):
        m = run("""
            movl #^x50, r3
            cmpv #4, #4, r3, #5
            beql equal
            halt
        equal:
            movl #1, r1
            halt
        """)
        assert regs(m)[1] == 1


class TestCallRet:
    def test_calls_ret_roundtrip(self):
        m = run("""
            movl #5, r0
            calls #0, @#double
            halt
        double:
            .word ^x0004    ; save r2
            movl #7, r2
            addl2 r0, r0
            ret
        """)
        assert regs(m)[0] == 10

    def test_calls_preserves_masked_registers(self):
        m = run("""
            movl #111, r2
            calls #0, @#clobber
            halt
        clobber:
            .word ^x0004    ; save r2
            movl #999, r2
            ret
        """)
        assert regs(m)[2] == 111

    def test_calls_arguments_on_stack(self):
        m = run("""
            pushl #30
            pushl #12
            calls #2, @#addem
            halt
        addem:
            .word 0
            addl3 4(ap), 8(ap), r0
            ret
        """)
        assert regs(m)[0] == 42

    def test_calls_sp_restored(self):
        m = run("""
            movl sp, r6
            pushl #1
            calls #1, @#nop_sub
            subl3 sp, r6, r7
            halt
        nop_sub:
            .word 0
            ret
        """)
        assert regs(m)[7] == 0  # RET discarded frame and the argument

    def test_nested_calls(self):
        m = run("""
            calls #0, @#outer
            halt
        outer:
            .word ^x000C    ; save r2, r3
            movl #1, r2
            calls #0, @#inner
            addl3 r2, r0, r0
            ret
        inner:
            .word ^x0004
            movl #2, r2
            movl #40, r0
            ret
        """)
        assert regs(m)[0] == 41

    def test_pushr_popr(self):
        m = run("""
            movl #1, r0
            movl #2, r1
            movl #3, r2
            pushr #^x0007
            clrl r0
            clrl r1
            clrl r2
            popr #^x0007
            halt
        """)
        assert regs(m)[0] == 1 and regs(m)[1] == 2 and regs(m)[2] == 3

    def test_callg(self):
        m = run("""
            callg @#arglist, @#takeargs
            halt
        takeargs:
            .word 0
            movl 4(ap), r0
            ret
        arglist:
            .long 1
            .long 77
        """)
        assert regs(m)[0] == 77


class TestSystemInstructions:
    def test_insque_remque_roundtrip(self):
        m = run("""
            insque @#entry, @#header
            remque @#entry, r1
            halt
        header:
            .long header
            .long header
        entry:
            .long 0
            .long 0
        """)
        assert regs(m)[1] == m.ebox.registers[1]  # returned entry address
        assert regs(m)[1] != 0

    def test_insque_empty_queue_sets_z(self):
        m = run("""
            insque @#entry, @#header
            beql was_empty
            halt
        was_empty:
            movl #1, r5
            halt
        header:
            .long header
            .long header
        entry:
            .long 0
            .long 0
        """)
        assert regs(m)[5] == 1

    def test_prober(self):
        m = run("""
            prober #0, #4, @#somewhere
            movl #1, r1
            halt
        somewhere:
            .long 0
        """)
        assert regs(m)[1] == 1

    def test_mtpr_mfpr_ipl(self):
        m = run("""
            mtpr #5, #18       ; IPL
            mfpr #18, r1
            halt
        """)
        assert regs(m)[1] == 5
        assert m.ebox.psl.ipl == 5

    def test_mtpr_tbis_invalidates(self):
        m = run("""
            movl @#target, r0  ; brings translation into the TB
            mtpr #^x80003000, #58
            halt
        target:
            .long 1
        """)
        assert not m.tb.probe(0x80003000)


class TestCharacterInstructions:
    def test_movc3_copies(self):
        m = run("""
            movc3 #5, @#src, @#dst
            movb @#dst, r6
            halt
        src:
            .ascii "HELLO"
        dst:
            .space 8
        """)
        assert regs(m)[6] == ord("H")
        assert regs(m)[0] == 0  # R0 = 0 after MOVC3

    def test_movc5_fill(self):
        m = run("""
            movc5 #2, @#src, #^x2A, #5, @#dst
            movb @#dst+4, r6
            halt
        src:
            .ascii "AB"
        dst:
            .space 8
        """)
        assert regs(m)[6] == 0x2A  # filled past the source

    def test_cmpc3_equal(self):
        m = run("""
            cmpc3 #4, @#a, @#b
            beql same
            halt
        same:
            movl #1, r6
            halt
        a:  .ascii "WXYZ"
        b:  .ascii "WXYZ"
        """)
        assert regs(m)[6] == 1

    def test_locc_finds(self):
        m = run("""
            locc #^x43, #5, @#text   ; find 'C'
            halt
        text:
            .ascii "ABCDE"
        """)
        # R0 = remaining count including the found char.
        assert regs(m)[0] == 3

    def test_skpc(self):
        m = run("""
            skpc #^x41, #5, @#text   ; skip leading 'A's
            halt
        text:
            .ascii "AABCD"
        """)
        assert regs(m)[0] == 3


class TestDecimalInstructions:
    def test_cvtlp_cvtpl_roundtrip(self):
        m = run("""
            movl #12345, r0
            cvtlp r0, #7, @#packed
            cvtpl #7, @#packed, r6
            halt
        packed:
            .space 8
        """)
        assert regs(m)[6] == 12345

    def test_cvtlp_negative(self):
        m = run("""
            movl #-321, r0
            cvtlp r0, #5, @#packed
            cvtpl #5, @#packed, r6
            halt
        packed:
            .space 8
        """)
        assert regs(m)[6] == (-321) & 0xFFFFFFFF

    def test_addp4(self):
        m = run("""
            movl #100, r0
            cvtlp r0, #5, @#a
            movl #23, r0
            cvtlp r0, #5, @#b
            addp4 #5, @#a, #5, @#b
            cvtpl #5, @#b, r6
            halt
        a:  .space 8
        b:  .space 8
        """)
        assert regs(m)[6] == 123

    def test_cmpp3(self):
        m = run("""
            movl #55, r0
            cvtlp r0, #5, @#a
            movl #55, r0
            cvtlp r0, #5, @#b
            cmpp3 #5, @#a, @#b
            beql equal
            halt
        equal:
            movl #1, r6
            halt
        a:  .space 8
        b:  .space 8
        """)
        assert regs(m)[6] == 1


class TestFloat:
    def test_movf_cvt_roundtrip(self):
        m = run("""
            movl #42, r0
            cvtlf r0, r2
            cvtfl r2, r6
            halt
        """)
        assert regs(m)[6] == 42

    def test_addf2(self):
        m = run("""
            cvtlf #5, r2
            cvtlf #3, r3
            addf2 r2, r3
            cvtfl r3, r6
            halt
        """)
        assert regs(m)[6] == 8

    def test_mulf2(self):
        m = run("""
            cvtlf #6, r2
            cvtlf #7, r3
            mulf2 r2, r3
            cvtfl r3, r6
            halt
        """)
        assert regs(m)[6] == 42

    def test_divf2(self):
        m = run("""
            cvtlf #4, r2
            cvtlf #84, r3
            divf2 r2, r3
            cvtfl r3, r6
            halt
        """)
        assert regs(m)[6] == 21

    def test_cmpf(self):
        m = run("""
            cvtlf #3, r2
            cvtlf #3, r3
            cmpf r2, r3
            beql equal
            halt
        equal:
            movl #1, r6
            halt
        """)
        assert regs(m)[6] == 1

    def test_mnegf(self):
        m = run("""
            cvtlf #9, r2
            mnegf r2, r3
            cvtfl r3, r6
            halt
        """)
        assert regs(m)[6] == (-9) & 0xFFFFFFFF
