"""Instruction tracer tests."""

from repro.cpu.itrace import InstructionTracer
from tests.helpers import boot


class TestInstructionTracer:
    def test_records_every_instruction(self):
        machine = boot("""
            movl #2, r0
            addl2 #3, r0
            halt
        """)
        with InstructionTracer(machine) as tracer:
            machine.run(10)
        assert [r.mnemonic for r in tracer.records] == \
            ["MOVL", "ADDL2", "HALT"]

    def test_cycle_deltas_sum_to_total(self):
        machine = boot("""
            movl #5, r0
        loop:
            sobgtr r0, loop
            halt
        """)
        with InstructionTracer(machine) as tracer:
            machine.run(100)
        assert sum(r.cycles for r in tracer.records) == machine.cycles

    def test_disassembly_in_records(self):
        machine = boot("movl #5, r0\nhalt")
        with InstructionTracer(machine) as tracer:
            machine.run(5)
        assert tracer.records[0].text == "movl    s^#5, r0"

    def test_limit_respected(self):
        machine = boot("""
            movl #60, r0
        loop:
            sobgtr r0, loop
            halt
        """)
        with InstructionTracer(machine, limit=10) as tracer:
            machine.run(200)
        assert len(tracer.records) == 10

    def test_sink_called(self):
        machine = boot("nop\nnop\nhalt")
        seen = []
        with InstructionTracer(machine, sink=seen.append):
            machine.run(5)
        assert len(seen) == 3

    def test_render(self):
        machine = boot("nop\nhalt")
        with InstructionTracer(machine) as tracer:
            machine.run(5)
        text = tracer.render()
        assert "nop" in text and "halt" in text
        assert "K" in text  # kernel mode marker

    def test_cycles_by_mnemonic(self):
        machine = boot("""
            movl #1, r0
            movl #2, r1
            halt
        """)
        with InstructionTracer(machine) as tracer:
            machine.run(5)
        profile = tracer.cycles_by_mnemonic()
        assert profile["MOVL"] > profile["HALT"]

    def test_detach_restores_hook(self):
        machine = boot("nop\nhalt")
        sentinel = []
        machine.boundary_hook = lambda m: sentinel.append(1)
        tracer = InstructionTracer(machine)
        tracer.attach()
        machine.run(2)
        tracer.detach()
        assert machine.boundary_hook is not None
        machine.halted = False
        machine.step()  # chained hook still fires
        assert len(sentinel) >= 2
