"""Operand specifier evaluation: every addressing mode, with side effects."""

from hypothesis import given, settings, strategies as st

from tests.helpers import run, regs


class TestRegisterModes:
    def test_register_source(self):
        m = run("movl #9, r3\nmovl r3, r4\nhalt")
        assert regs(m)[4] == 9

    def test_short_literal(self):
        m = run("movl #63, r0\nhalt")
        assert regs(m)[0] == 63

    def test_immediate(self):
        m = run("movl #64, r0\nhalt")  # 64 > 63: auto-immediate
        assert regs(m)[0] == 64

    def test_float_short_literal(self):
        # S^#1.0 in F_floating short literal form is value 8 (exp=1).
        m = run("movf s^#8, r2\ncvtfl r2, r0\nhalt")
        assert regs(m)[0] == 1


class TestMemoryModes:
    def test_register_deferred(self):
        m = run("""
            moval @#var, r2
            movl (r2), r0
            halt
        var: .long 77
        """)
        assert regs(m)[0] == 77

    def test_autoincrement_advances(self):
        m = run("""
            moval @#arr, r2
            movl (r2)+, r0
            movl (r2)+, r1
            halt
        arr:
            .long 10
            .long 20
        """)
        assert regs(m)[0] == 10 and regs(m)[1] == 20

    def test_autoincrement_byte_steps_one(self):
        m = run("""
            moval @#arr, r2
            movb (r2)+, r0
            movb (r2)+, r1
            halt
        arr:
            .byte 1, 2
        """)
        assert regs(m)[0] & 0xFF == 1 and regs(m)[1] & 0xFF == 2

    def test_autodecrement(self):
        m = run("""
            moval @#arr+8, r2
            movl -(r2), r0
            movl -(r2), r1
            halt
        arr:
            .long 10
            .long 20
        """)
        assert regs(m)[0] == 20 and regs(m)[1] == 10

    def test_displacement(self):
        m = run("""
            moval @#arr, r2
            movl 4(r2), r0
            halt
        arr:
            .long 1
            .long 2
        """)
        assert regs(m)[0] == 2

    def test_displacement_negative(self):
        m = run("""
            moval @#arr+4, r2
            movl -4(r2), r0
            halt
        arr:
            .long 5
            .long 6
        """)
        assert regs(m)[0] == 5

    def test_displacement_deferred(self):
        m = run("""
            moval @#ptr, r2
            movl @0(r2), r0
            halt
        ptr:
            .long target
        target:
            .long 99
        """)
        assert regs(m)[0] == 99

    def test_autoincrement_deferred(self):
        m = run("""
            moval @#ptrs, r2
            movl @(r2)+, r0
            movl @(r2)+, r1
            halt
        ptrs:
            .long a
            .long b
        a:  .long 11
        b:  .long 22
        """)
        assert regs(m)[0] == 11 and regs(m)[1] == 22
        # the cursor advanced by 4 per pointer
        assert regs(m)[2] != 0

    def test_absolute(self):
        m = run("""
            movl @#var, r0
            halt
        var: .long 123
        """)
        assert regs(m)[0] == 123

    def test_indexed_displacement(self):
        m = run("""
            moval @#arr, r2
            movl #2, r7
            movl 0(r2)[r7], r0
            halt
        arr:
            .long 100
            .long 101
            .long 102
        """)
        assert regs(m)[0] == 102

    def test_indexed_scales_by_size(self):
        m = run("""
            moval @#arr, r2
            movl #2, r7
            movb 0(r2)[r7], r0
            halt
        arr:
            .byte 5, 6, 7, 8
        """)
        assert regs(m)[0] & 0xFF == 7

    def test_write_through_pointer(self):
        m = run("""
            moval @#var, r2
            movl #55, (r2)
            movl @#var, r0
            halt
        var: .long 0
        """)
        assert regs(m)[0] == 55

    def test_modify_in_memory(self):
        m = run("""
            incl @#var
            incl @#var
            movl @#var, r0
            halt
        var: .long 10
        """)
        assert regs(m)[0] == 12


class TestSpecifierStatistics:
    def test_tracer_counts_positions(self):
        m = run("""
            movl #1, r0         ; spec1 literal, spec2 register
            addl3 r0, r0, r1    ; three register specs
            halt
        """)
        t = m.tracer
        assert t.specifiers == 2 + 3 + 0
        spec1 = sum(v for (bucket, _), v in t.specifier_modes.items()
                    if bucket == "spec1")
        assert spec1 == 2  # movl + addl3 first specs (halt has none)

    def test_indexed_counted(self):
        m = run("""
            moval @#arr, r2
            clrl r7
            movl 0(r2)[r7], r0
            halt
        arr: .long 9
        """)
        assert m.tracer.indexed_specifiers == 1

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=15, deadline=None)
    def test_literal_roundtrip_property(self, a, b):
        m = run(f"movl #{a}, r0\naddl2 #{b}, r0\nhalt")
        assert regs(m)[0] == a + b
