"""Fast-path vs reference-implementation equivalence for the EBOX.

The optimised EBOX fast-forwards provably idle fill-engine windows,
batches IB-stall charging, and inlines the common-case D-stream
reference sequencing.  ``ReferenceEBox`` below re-creates the original
per-cycle implementations (``tick_reference`` / ``ib_take_reference``
plus straightforward read/write through the memory subsystem), and the
tests run whole workloads under both engines: every observable —
histogram count sets, cycle totals, tracer and memory statistics — must
be bit-identical.
"""

import pytest

from repro.analysis import Measurement
from repro.arch.datatypes import MASKS
from repro.cpu import machine as machine_mod
from repro.cpu.ebox import EBox
from repro.osim.executive import Executive
from repro.workloads.profiles import MixProfile, STANDARD_PROFILES

INSTRUCTIONS = 2500
SEED = 1984


class ReferenceEBox(EBox):
    """EBox with every timing fast path replaced by the per-cycle spec."""

    def tick(self, cycles, port_free=True):
        self.tick_reference(cycles, port_free)

    def _cycle_raw(self, upc, n=1):
        self.board.count(upc, n)
        self.tick_reference(n)

    def ib_take(self, nbytes, stall_upc):
        self.ib_take_reference(nbytes, stall_upc)

    def read(self, va, size, upc):
        value = 0
        shift = 0
        for i, (chunk_va, chunk_size) in enumerate(self._chunks(va, size)):
            pa = self.translate(chunk_va, "d")
            result = self.mem.read_data(pa, chunk_size, self.now)
            self.board.count(upc)
            self.tick_reference(1, port_free=False)
            if result.stall_cycles:
                self.board.count_stall(upc, result.stall_cycles)
                self.tick_reference(result.stall_cycles, port_free=False)
            extra_refs = result.physical_refs - 1 + (1 if i else 0)
            if extra_refs:
                self._cycle_raw(self.u.unaligned_calc, extra_refs)
            value |= result.value << shift
            shift += 8 * chunk_size
        return value

    def write(self, va, value, size, upc):
        shift = 0
        for i, (chunk_va, chunk_size) in enumerate(self._chunks(va, size)):
            pa = self.translate(chunk_va, "d")
            chunk = (value >> shift) & MASKS[chunk_size]
            result = self.mem.write_data(pa, chunk, chunk_size, self.now)
            self.board.count(upc)
            self.tick_reference(1, port_free=False)
            if result.stall_cycles:
                self.board.count_stall(upc, result.stall_cycles)
                self.tick_reference(result.stall_cycles, port_free=False)
            extra_refs = result.physical_refs - 1 + (1 if i else 0)
            if extra_refs:
                self._cycle_raw(self.u.unaligned_calc, extra_refs)
            shift += 8 * chunk_size


def _run(profile, monkeypatch=None, instructions=INSTRUCTIONS):
    if monkeypatch is not None:
        monkeypatch.setattr(machine_mod, "EBox", ReferenceEBox)
    machine = machine_mod.VAX780()
    executive = Executive(machine, profile, seed=SEED)
    executive.boot()
    executive.run(instructions, cycle_limit=instructions * 1000)
    if monkeypatch is not None:
        assert isinstance(machine.ebox, ReferenceEBox)
        monkeypatch.undo()
    return Measurement.capture(profile.name, machine)


def _fingerprint(measurement):
    h = measurement.histogram
    return (
        measurement.cycles,
        list(h.nonstalled),
        list(h.stalled),
        {name: getattr(measurement.tracer, name)
         for name in measurement.tracer._SCALARS},
        measurement.tracer.group_counts,
    )


@pytest.mark.parametrize("profile", STANDARD_PROFILES[:3],
                         ids=lambda p: p.name)
def test_fastpath_matches_reference_on_standard_workloads(
        profile, monkeypatch):
    fast = _fingerprint(_run(profile))
    reference = _fingerprint(_run(profile, monkeypatch))
    assert fast[0] == reference[0], "cycle totals diverged"
    assert fast == reference


def test_fastpath_matches_reference_under_memory_pressure(monkeypatch):
    """An interrupt/stall-heavy profile exercises the batched paths."""
    profile = MixProfile(name="fastpath-pressure",
                         description="frequent interrupts, string-heavy",
                         char_ops=20.0, syscall_density=0.06,
                         terminal_period_cycles=3000)
    fast = _fingerprint(_run(profile))
    reference = _fingerprint(_run(profile, monkeypatch))
    assert fast == reference
