"""Fast-path vs reference-implementation equivalence for the EBOX.

The optimised EBOX fast-forwards provably idle fill-engine windows,
batches IB-stall charging, and inlines the common-case D-stream
reference sequencing.  :class:`repro.validate.differential.ReferenceEBox`
re-creates the original per-cycle implementations (``tick_reference`` /
``ib_take_reference`` plus straightforward read/write through the memory
subsystem), and the tests run whole workloads under both engines: every
observable — histogram count sets, cycle totals, tracer and memory
statistics — must be bit-identical.
"""

import pytest

from repro.analysis import Measurement
from repro.cpu import machine as machine_mod
from repro.osim.executive import Executive
from repro.validate.differential import ReferenceEBox
from repro.workloads.profiles import MixProfile, STANDARD_PROFILES

INSTRUCTIONS = 2500
SEED = 1984


def _run(profile, monkeypatch=None, instructions=INSTRUCTIONS):
    if monkeypatch is not None:
        monkeypatch.setattr(machine_mod, "EBox", ReferenceEBox)
    machine = machine_mod.VAX780()
    executive = Executive(machine, profile, seed=SEED)
    executive.boot()
    executive.run(instructions, cycle_limit=instructions * 1000)
    if monkeypatch is not None:
        assert isinstance(machine.ebox, ReferenceEBox)
        monkeypatch.undo()
    return Measurement.capture(profile.name, machine)


def _fingerprint(measurement):
    h = measurement.histogram
    return (
        measurement.cycles,
        list(h.nonstalled),
        list(h.stalled),
        {name: getattr(measurement.tracer, name)
         for name in measurement.tracer._SCALARS},
        measurement.tracer.group_counts,
    )


@pytest.mark.parametrize("profile", STANDARD_PROFILES[:3],
                         ids=lambda p: p.name)
def test_fastpath_matches_reference_on_standard_workloads(
        profile, monkeypatch):
    fast = _fingerprint(_run(profile))
    reference = _fingerprint(_run(profile, monkeypatch))
    assert fast[0] == reference[0], "cycle totals diverged"
    assert fast == reference


def test_fastpath_matches_reference_under_memory_pressure(monkeypatch):
    """An interrupt/stall-heavy profile exercises the batched paths."""
    profile = MixProfile(name="fastpath-pressure",
                         description="frequent interrupts, string-heavy",
                         char_ops=20.0, syscall_density=0.06,
                         terminal_period_cycles=3000)
    fast = _fingerprint(_run(profile))
    reference = _fingerprint(_run(profile, monkeypatch))
    assert fast == reference
