"""Golden timing tests: cycle-level behaviour of the 11/780 model.

These pin the implementation rules of §2.1 and §4.3: one non-overlapped
decode cycle per instruction, 6-cycle read-miss stall in the simplest
case, write-buffer recycle stalls, IB stalls after taken branches, and
the TB-miss service cost.
"""

from repro.analysis import Measurement, Reduction
from repro.ucode.rows import Column, Row
from tests.helpers import boot, run


def reduction_of(machine):
    return Reduction(machine.board.snapshot())


def run_measured(asm_text, **kwargs):
    """Run to HALT and return (machine, Reduction)."""
    machine = run(asm_text, **kwargs)
    return machine, reduction_of(machine)


class TestDecodeAccounting:
    def test_one_decode_cycle_per_instruction(self):
        m, red = run_measured("""
            movl #1, r0
            movl #2, r1
            movl #3, r2
            halt
        """)
        # Decode compute = exactly one cycle per instruction (§2.1).
        assert red.cells[(Row.DECODE, Column.COMPUTE)] == red.instructions

    def test_histogram_total_equals_machine_cycles(self):
        m, red = run_measured("""
            movl #100, r0
        loop:
            addl2 #1, r1
            sobgtr r0, loop
            halt
        """)
        assert red.total_cycles() == m.cycles

    def test_instruction_count_from_dispatch_addresses(self):
        m, red = run_measured("nop\nnop\nnop\nhalt")
        assert red.instructions == m.tracer.instructions == 4


class TestReadStalls:
    def test_cold_read_stalls_six_cycles(self):
        m, red = run_measured("""
            movl @#data, r0
            halt
            .space 64          ; keep the datum out of the code's blocks
            .align 4
        data:
            .long 1
        """)
        # The operand read misses the (cold-for-data) cache.
        assert red.cells[(Row.SPEC1, Column.RSTALL)] >= 6

    def test_warm_read_does_not_stall(self):
        m1 = run("""
            movl @#data, r0
            movl @#data, r1
            movl @#data, r2
            halt
            .align 4
        data: .long 5
        """)
        red = reduction_of(m1)
        first = red.cells[(Row.SPEC1, Column.RSTALL)]
        reads = red.cells[(Row.SPEC1, Column.READ)]
        assert reads == 3
        # Only the first (missing) read can stall; re-reads hit.
        assert first <= 14  # one miss (6) plus SBI queueing behind I-fetch


class TestWriteStalls:
    def test_back_to_back_writes_stall(self):
        m, red = run_measured("""
            movl #1, @#a
            movl #2, @#b
            movl #3, @#c
            halt
        a:  .long 0
        b:  .long 0
        c:  .long 0
        """)
        assert red.cells[(Row.SPEC26, Column.WSTALL)] > 0

    def test_spacing_reduces_write_stall(self):
        back_to_back = run("""
            movl #1, @#a
            movl #2, @#b
            halt
        a:  .long 0
        b:  .long 0
        """)
        spaced = run("""
            movl #1, @#a
            mull3 #3, #5, r6     ; long compute separates the writes
            divl3 #3, r6, r7
            movl #2, @#b
            halt
        a:  .long 0
        b:  .long 0
        """)
        stall_close = reduction_of(back_to_back).column_total(Column.WSTALL)
        stall_far = reduction_of(spaced).column_total(Column.WSTALL)
        # The paper's character microcode trick (§4.3) works because
        # spacing writes by the recycle time removes the stall.
        assert stall_far < stall_close


class TestIBStalls:
    def test_taken_branch_causes_decode_ib_stall(self):
        m, red = run_measured("""
            brb over
            .space 32
        over:
            halt
        """)
        # The flush forces the next decode to wait for the refill.
        assert red.cells[(Row.DECODE, Column.IBSTALL)] > 0

    def test_straight_line_has_little_ib_stall(self):
        m, red = run_measured("\n".join(["movl #1, r0"] * 20 + ["halt"]))
        per_instr = red.cells[(Row.DECODE, Column.IBSTALL)] \
            / red.instructions
        assert per_instr < 1.0


class TestTBMissService:
    def test_tb_miss_costs_about_21_cycles(self):
        m, red = run_measured("""
            movl @#far, r0
            halt
        far:
            .long 7
        """)
        services = red.tb_miss_services()
        assert services >= 1
        avg = red.tb_miss_cycles() / services
        assert 15 <= avg <= 30  # paper: 21.6

    def test_tb_hit_no_service(self):
        m = boot("""
            movl @#data, r0
            movl @#data, r1
            halt
        data: .long 1
        """)
        m.run(10)
        before = m.tracer.tb_miss_services["d"]
        # Second access to the same page must not re-miss.
        assert before <= 2  # code page + data page at most

    def test_miss_charged_to_mem_mgmt_row(self):
        m, red = run_measured("""
            movl @#data, r0
            halt
        data: .long 1
        """)
        assert red.row_total(Row.MEM_MGMT) > 0
        # One abort cycle per microtrap (§5).
        assert red.cells[(Row.ABORTS, Column.COMPUTE)] >= \
            red.tb_miss_services()


class TestExecuteCosts:
    def test_simple_instruction_one_execute_cycle(self):
        m, red = run_measured("""
            movl #1, r0
            addl2 #2, r0
            halt
        """)
        simple = red.cells[(Row.EX_SIMPLE, Column.COMPUTE)]
        # MOVL + ADDL2 cost 1 execute compute each (fused or not).
        fused = (red.cells[(Row.SPEC1, Column.COMPUTE)]
                 + red.cells[(Row.SPEC26, Column.COMPUTE)])
        assert simple + fused >= 2

    def test_character_instruction_orders_of_magnitude(self):
        m, red = run_measured("""
            movc3 #40, @#src, @#dst
            halt
        src: .space 48
        dst: .space 48
        """)
        per_char_instr = red.row_total(Row.EX_CHARACTER)
        assert per_char_instr > 50  # Table 9: ~117 for 40-char strings

    def test_calls_much_heavier_than_move(self):
        m, red = run_measured("""
            calls #0, @#sub
            halt
        sub:
            .word ^x0004
            movl #1, r2
            ret
        """)
        callret = red.row_total(Row.EX_CALLRET)
        assert callret > 30  # Table 9: group mean ~45

    def test_branch_displacement_row_on_taken_only(self):
        taken = run("""
            clrl r0
            tstl r0
            beql over
            nop
        over:
            halt
        """)
        not_taken = run("""
            clrl r0
            tstl r0
            bneq over
            nop
        over:
            halt
        """)
        red_t = reduction_of(taken)
        red_n = reduction_of(not_taken)
        # B-DISP compute only when the branch actually branches (§5).
        assert red_t.cells[(Row.BDISP, Column.COMPUTE)] == 1
        assert red_n.cells[(Row.BDISP, Column.COMPUTE)] == 0


class TestMicrocodePatches:
    def test_patched_family_charges_abort(self):
        # ADDSUB is in the default patched set.
        m, red = run_measured("""
            movl #1, r0
            addl2 #2, r0
            addl2 #3, r0
            halt
        """)
        # Two ADDL2 executions -> at least two patch aborts.
        patch_addr = m.umap.patch_abort
        assert m.board.snapshot().executions(patch_addr) == 2

    def test_unpatched_machine(self):
        from repro.params import VAX780 as P
        m = boot("""
            movl #1, r0
            addl2 #2, r0
            halt
        """, params=P.with_overrides(patched_families=()))
        m.run(100)
        assert m.board.snapshot().executions(m.umap.patch_abort) == 0
