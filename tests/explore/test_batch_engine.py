"""The batch engine behind run_sweep: same records, fewer machines."""

import pytest

from repro.explore import Axis, ResultStore, SweepSpec, run_sweep
from repro.explore import runner as runner_module

#: Budget-axis sweep: every point shares (workload, seed, params), so
#: the whole thing fuses onto one machine per workload.
FUSING = SweepSpec(
    "fusing", (Axis("instructions", (300, 600, 900)),),
    instructions=300, workloads=("timesharing-research",))

#: Param-axis sweep: every point is its own cohort; auto stays scalar.
SPLITTING = SweepSpec(
    "splitting", (Axis("overlapped_decode", (False, True)),),
    instructions=300, workloads=("timesharing-research",))


class TestRecordEquality:
    def test_batch_records_equal_scalar_records(self, tmp_path):
        scalar = run_sweep(FUSING, jobs=1, engine="scalar")
        batch = run_sweep(FUSING, engine="batch")
        assert scalar.stats["engine"] == "scalar"
        assert batch.stats["engine"] == "batch"
        for a, b in zip(scalar.points, batch.points):
            assert a["label"] == b["label"]
            assert a["records"] == b["records"]
            assert a["composite"] == b["composite"]

    def test_batch_counts_simulations_and_fills_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        before = runner_module.SIMULATIONS
        cold = run_sweep(FUSING, store=store, engine="batch")
        assert cold.stats["simulated"] == 3
        assert runner_module.SIMULATIONS == before + 3
        assert len(store) == 3
        # A scalar rerun over the batch-filled store is all cache hits.
        warm = run_sweep(FUSING, store=store, jobs=1, engine="scalar")
        assert warm.stats["simulated"] == 0
        for a, b in zip(cold.points, warm.points):
            assert a["records"] == b["records"]


class TestAutoSelection:
    def test_auto_fuses_a_budget_axis(self):
        sweep = run_sweep(FUSING, engine="auto")
        assert sweep.stats["engine"] == "batch"

    def test_auto_stays_scalar_when_nothing_fuses(self):
        sweep = run_sweep(SPLITTING, jobs=1, engine="auto")
        assert sweep.stats["engine"] == "scalar"

    def test_auto_on_a_warm_store_reports_scalar(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_sweep(FUSING, store=store, engine="batch")
        warm = run_sweep(FUSING, store=store, engine="auto")
        assert warm.stats["simulated"] == 0
        assert warm.stats["engine"] == "scalar"

    def test_unknown_engine_rejected_before_simulating(self):
        before = runner_module.SIMULATIONS
        with pytest.raises(ValueError, match="unknown engine 'warp'"):
            run_sweep(FUSING, engine="warp")
        assert runner_module.SIMULATIONS == before


class TestProgress:
    def test_progress_reports_fused_cohorts(self):
        lines = []
        run_sweep(FUSING, engine="batch", progress=lines.append)
        assert any("cohort" in line for line in lines)
        assert any("3/3 lanes" in line for line in lines)
