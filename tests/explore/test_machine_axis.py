"""The machine axis in explore: validation, sweeping, store stats."""

from dataclasses import replace

import pytest

from repro import api
from repro.explore import (ResultStore, SpaceError, parse_axis, run_sweep)
from repro.explore.space import SMOKE, Axis


class TestValidation:
    def test_explore_rejects_an_unknown_machine_up_front(self):
        with pytest.raises(api.ApiError) as err:
            api.explore(smoke=True, machine="pdp11", store=None)
        assert "pdp11" in str(err.value)
        assert "vax780" in str(err.value)

    def test_explore_points_rejects_it_too(self):
        with pytest.raises(api.ApiError):
            api.explore_points(smoke=True, machine="pdp11")

    def test_parse_axis_validates_machine_values(self):
        with pytest.raises(SpaceError) as err:
            parse_axis("machine=vax780,nope")
        assert "nope" in str(err.value)
        axis = parse_axis("machine=vax780,uvax78032")
        assert axis.values == ("vax780", "uvax78032")

    def test_point_label_names_a_nondefault_machine(self):
        spec = replace(SMOKE, axes=(Axis("machine", ("uvax78032",)),))
        labels = {point.label() for point in spec.points()}
        assert "machine=uvax78032" in labels
        assert "baseline" in labels


class TestMachineSweep:
    @pytest.fixture(scope="class")
    def sweep(self, tmp_path_factory):
        spec = replace(
            SMOKE, name="machines-smoke",
            axes=(Axis("machine", ("vax780", "uvax78032")),),
            workloads=("rte-educational",))
        store = ResultStore(tmp_path_factory.mktemp("machine-axis"))
        return store, run_sweep(spec, store=store, jobs=1)

    def test_machines_produce_distinct_results(self, sweep):
        _, result = sweep
        by_label = {entry["label"]: entry for entry in result.points}
        assert set(by_label) == {"baseline", "machine=uvax78032"}
        records = {label: entry["records"]["rte-educational"]
                   for label, entry in by_label.items()}
        assert (records["baseline"]["cycles"]
                != records["machine=uvax78032"]["cycles"])
        assert records["baseline"]["machine"] == "vax780"
        assert records["machine=uvax78032"]["machine"] == "uvax78032"

    def test_store_stats_buckets_by_machine(self, sweep):
        store, _ = sweep
        machines = store.stats()["machines"]
        assert machines.get("vax780", 0) >= 1
        assert machines.get("uvax78032", 0) >= 1

    def test_resume_reuses_both_machines_records(self, sweep):
        store, first = sweep
        spec = replace(
            SMOKE, name="machines-smoke",
            axes=(Axis("machine", ("vax780", "uvax78032")),),
            workloads=("rte-educational",))
        again = run_sweep(spec, store=store, jobs=1)
        assert again.stats["simulated"] == 0
        assert again.stats["cached"] == again.stats["tasks"]
        assert again.stats["tasks"] == first.stats["tasks"]
