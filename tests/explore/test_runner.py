"""Sweep runner: baseline identity, warm-store resume, composition.

The two contracts the subsystem stands on:

* the default-params point is *bit-identical* (cycle counts, histogram
  totals and digest) to the standard composite's per-workload runs;
* a warm store performs zero new simulations.
"""

import hashlib

from repro.explore import SMOKE, run_sweep
from repro.explore import runner as runner_module
from repro.workloads import engine
from repro.workloads.profiles import STANDARD_PROFILES


def _digest(histogram) -> str:
    digest = hashlib.sha256()
    digest.update(histogram.nonstalled.tobytes())
    digest.update(histogram.stalled.tobytes())
    return digest.hexdigest()


class TestBaselineIdentity:
    def test_default_point_matches_run_workload_bit_for_bit(
            self, smoke_sweep):
        baseline = smoke_sweep.point()
        for profile in STANDARD_PROFILES:
            measurement = engine.run_workload(
                profile, SMOKE.instructions, SMOKE.seed)
            record = baseline["records"][profile.name]
            assert record["cycles"] == measurement.cycles
            assert record["histogram"]["sha256"] == \
                _digest(measurement.histogram)
            assert record["histogram"]["nonstalled_total"] == \
                sum(measurement.histogram.nonstalled)
            assert record["histogram"]["stalled_total"] == \
                sum(measurement.histogram.stalled)

    def test_baseline_composite_matches_standard_composite(
            self, smoke_sweep):
        composite = engine.standard_composite(
            instructions=SMOKE.instructions, seed=SMOKE.seed)
        baseline = smoke_sweep.point()["composite"]
        assert baseline["cycles"] == composite.cycles
        assert baseline["histogram"]["nonstalled_total"] == \
            sum(composite.histogram.nonstalled)
        assert baseline["histogram"]["stalled_total"] == \
            sum(composite.histogram.stalled)


class TestWarmStore:
    def test_cached_rerun_performs_zero_simulations(self, smoke_sweep,
                                                    smoke_store):
        before = runner_module.SIMULATIONS
        warm = run_sweep(SMOKE, store=smoke_store, jobs=1)
        assert runner_module.SIMULATIONS == before, \
            "warm store must not re-simulate"
        assert warm.stats["simulated"] == 0
        assert warm.stats["cached"] == warm.stats["tasks"]

    def test_warm_results_equal_cold_results(self, smoke_sweep,
                                             smoke_store):
        warm = run_sweep(SMOKE, store=smoke_store, jobs=1)
        for cold_entry, warm_entry in zip(smoke_sweep.points,
                                          warm.points):
            assert cold_entry["label"] == warm_entry["label"]
            assert cold_entry["records"] == warm_entry["records"]

    def test_no_resume_simulates_again(self, smoke_sweep, smoke_store,
                                       tmp_path):
        from repro.explore import SweepSpec, Axis
        tiny = SweepSpec("tiny", (Axis("overlapped_decode",
                                       (False, True)),),
                         instructions=300,
                         workloads=("timesharing-research",))
        cold = run_sweep(tiny, store=smoke_store, jobs=1)
        assert cold.stats["simulated"] == 2
        warm = run_sweep(tiny, store=smoke_store, jobs=1)
        assert warm.stats["simulated"] == 0
        forced = run_sweep(tiny, store=smoke_store, jobs=1,
                           resume=False)
        assert forced.stats["simulated"] == 2
        assert forced.points[0]["records"] == cold.points[0]["records"]


class TestComposition:
    def test_composite_is_sum_of_workload_records(self, smoke_sweep):
        for entry in smoke_sweep.points:
            records = entry["records"].values()
            composite = entry["composite"]
            assert composite["cycles"] == \
                sum(r["cycles"] for r in records)
            assert composite["instructions_measured"] == \
                sum(r["instructions_measured"] for r in records)
            total_cells = sum(c for r in records
                              for cols in r["cells"].values()
                              for c in cols.values())
            assert total_cells == sum(
                c for cols in composite["cells"].values()
                for c in cols.values())

    def test_point_lookup(self, smoke_sweep):
        assert smoke_sweep.point()["label"] == "baseline"
        entry = smoke_sweep.point(cache_bytes=4096)
        assert entry["point"].params().cache_bytes == 4096
        assert smoke_sweep.point(cache_bytes=999) is None

    def test_stats_shape(self, smoke_sweep):
        stats = smoke_sweep.stats
        assert stats["points"] == 3
        assert stats["workloads"] == 5
        assert stats["tasks"] == 15
        assert stats["simulated"] + stats["cached"] == 15
