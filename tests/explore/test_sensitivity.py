"""Sensitivity tables and the §5 overlapped-decode claim."""

from repro.explore import SMOKE
from repro.explore.sensitivity import (axis_table, decode_claim,
                                       point_metrics, sensitivity)


class TestPointMetrics:
    def test_baseline_decode_costs_one_cycle_per_instruction(
            self, smoke_sweep):
        metrics = point_metrics(smoke_sweep.point())
        assert metrics["decode_cycles_per_instruction"] == 1.0
        assert metrics["cpi"] > 1.0
        assert metrics["instructions"] > 0

    def test_cpi_backs_out_overlapped_decodes(self, smoke_sweep):
        entry = smoke_sweep.point(overlapped_decode=True)
        metrics = point_metrics(entry)
        composite = entry["composite"]
        classified = sum(c for cols in composite["cells"].values()
                         for c in cols.values())
        spent = classified - composite["decode"]["overlapped_decodes"]
        assert metrics["cpi"] == spent / composite["instructions_measured"]
        assert metrics["cpi"] < metrics["classified_cycles"] \
            / composite["instructions_measured"]


class TestAxisTable:
    def test_smaller_cache_stalls_more(self, smoke_sweep):
        table = axis_table(smoke_sweep, SMOKE.axes[0])
        assert table["axis"] == "cache_bytes"
        by_value = {row["value"]: row for row in table["rows"]}
        assert by_value[4096]["rstall_per_instruction"] > \
            by_value[8192]["rstall_per_instruction"]
        assert by_value[4096]["cpi"] > by_value[8192]["cpi"]
        assert by_value[8192]["is_default"]
        assert not by_value[4096]["is_default"]


class TestDecodeClaim:
    def test_section5_estimate_is_exact(self, smoke_sweep):
        claim = decode_claim(smoke_sweep)
        assert claim["ok"], claim
        assert claim["cycles_saved"] == \
            claim["non_pc_changing_dispatches"]
        assert claim["baseline_decode_cycles"] - \
            claim["overlapped_decode_cycles"] > 0
        # Overlap helps: CPI must drop by the saved decode fraction.
        assert claim["overlapped_cpi"] < claim["baseline_cpi"]
        # Most instructions don't change the PC (Table 2: ~38% do).
        fraction = claim["non_pc_changing_dispatches"] \
            / claim["overlapped_dispatches"]
        assert 0.5 < fraction < 0.95

    def test_every_skipped_decode_was_non_pc_changing(self, smoke_sweep):
        over = smoke_sweep.point(overlapped_decode=True)["composite"]
        decode = over["decode"]
        assert decode["overlapped_decodes"] == \
            decode["dispatches"] - decode["pc_change_dispatches"]

    def test_claim_absent_without_decode_axis(self, smoke_sweep):
        class Stub:
            spec = smoke_sweep.spec
            points = [e for e in smoke_sweep.points
                      if e["point"].overrides !=
                      (("overlapped_decode", True),)]
            point = smoke_sweep.__class__.point

        stub = Stub()
        assert decode_claim(stub) is None


class TestFullReport:
    def test_sensitivity_shape(self, smoke_sweep):
        report = sensitivity(smoke_sweep)
        assert report["spec"] == "smoke"
        assert [t["axis"] for t in report["axes"]] == \
            [a.name for a in SMOKE.axes]
        assert report["decode_claim"]["ok"]
        assert report["baseline"]["decode_cycles_per_instruction"] == 1.0
