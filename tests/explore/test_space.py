"""Sweep-space declaration and validation."""

import pytest

from repro.explore.space import (Axis, PAPER_SENSITIVITY, SMOKE, SPECS,
                                 SpaceError, SweepSpec, parse_axis,
                                 valid_axes)
from repro.params import MachineParams, VAX780


class TestAxis:
    def test_valid_axes_cover_params_and_specials(self):
        axes = valid_axes()
        for name in MachineParams.field_names():
            assert name in axes
        assert "seed" in axes and "instructions" in axes

    def test_unknown_name_rejected_with_field_list(self):
        with pytest.raises(SpaceError) as exc:
            Axis("cache_size", (1, 2))
        assert "unknown axis 'cache_size'" in str(exc.value)
        assert "cache_bytes" in str(exc.value)
        assert "tb_entries" in str(exc.value)

    def test_empty_and_duplicate_values_rejected(self):
        with pytest.raises(SpaceError, match="no values"):
            Axis("cache_bytes", ())
        with pytest.raises(SpaceError, match="repeats"):
            Axis("cache_bytes", (4096, 4096))


class TestParseAxis:
    def test_integers(self):
        axis = parse_axis("cache_bytes=4096, 8192,0x4000")
        assert axis.name == "cache_bytes"
        assert axis.values == (4096, 8192, 16384)

    def test_booleans(self):
        axis = parse_axis("overlapped_decode=off,on")
        assert axis.values == (False, True)

    def test_special_axes_are_integers(self):
        assert parse_axis("seed=1,2,3").values == (1, 2, 3)

    def test_bad_boolean(self):
        with pytest.raises(SpaceError, match="not a boolean"):
            parse_axis("overlapped_decode=maybe")

    def test_bad_integer(self):
        with pytest.raises(SpaceError, match="not an integer"):
            parse_axis("cache_bytes=big")

    def test_missing_values(self):
        with pytest.raises(SpaceError, match="no values"):
            parse_axis("cache_bytes")

    def test_unknown_name(self):
        with pytest.raises(SpaceError, match="unknown axis"):
            parse_axis("nonesuch=1")

    def test_unsweepable_type(self):
        with pytest.raises(SpaceError, match="cannot be swept"):
            parse_axis("patched_families=ADDSUB")


class TestSweepSpec:
    def test_ofat_points_share_one_baseline(self):
        spec = SweepSpec("t", (Axis("cache_bytes", (4096, 8192, 16384)),
                               Axis("tb_entries", (64, 128))))
        points = spec.points()
        # baseline + 2 non-default cache sizes + 1 non-default TB size.
        assert [p.label() for p in points] == [
            "baseline", "cache_bytes=4096", "cache_bytes=16384",
            "tb_entries=64"]
        assert points[0].params() == VAX780

    def test_cartesian_full_grid(self):
        spec = SweepSpec("t", (Axis("cache_bytes", (4096, 8192)),
                               Axis("tb_entries", (64, 128))),
                         mode="cartesian")
        # 2x2 grid; the (8192, 128) combination IS the baseline.
        assert len(spec.points()) == 4

    def test_point_params_apply_overrides(self):
        spec = SweepSpec("t", (Axis("cache_bytes", (4096,)),))
        point = spec.points()[1]
        assert point.params().cache_bytes == 4096
        assert point.params().tb_entries == VAX780.tb_entries

    def test_special_axes_move_seed_and_instructions(self):
        spec = SweepSpec("t", (Axis("seed", (1984, 7)),), seed=1984)
        points = spec.points()
        assert len(points) == 2
        assert points[0].seed == 1984 and points[1].seed == 7
        assert points[1].overrides == ()

    def test_invalid_point_fails_at_construction(self):
        with pytest.raises(SpaceError, match="invalid point"):
            SweepSpec("t", (Axis("cache_bytes", (5000,)),))

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SpaceError, match="duplicate axis"):
            SweepSpec("t", (Axis("cache_bytes", (4096,)),
                            Axis("cache_bytes", (16384,))))

    def test_unknown_workload_rejected(self):
        with pytest.raises(SpaceError, match="unknown workload"):
            SweepSpec("t", (Axis("cache_bytes", (4096,)),),
                      workloads=("nonesuch",))

    def test_unknown_mode_rejected(self):
        with pytest.raises(SpaceError, match="unknown mode"):
            SweepSpec("t", (Axis("cache_bytes", (4096,)),),
                      mode="diagonal")

    def test_named_specs_enumerate(self):
        assert SPECS["smoke"] is SMOKE
        points = PAPER_SENSITIVITY.points()
        # 4 three-value axes sharing the stock baseline + the decode
        # toggle: 1 + 4*2 + 1.
        assert len(points) == 10
        assert sum(1 for a in PAPER_SENSITIVITY.axes
                   if len(a.values) >= 3) >= 4
