"""Content-addressed result store behaviour."""

import json
import warnings

import pytest

from repro.explore.store import ResultStore, code_version, result_key
from repro.params import VAX780


class TestResultKey:
    def test_stable(self):
        a = result_key(VAX780, "timesharing-research", 1500, 1984)
        b = result_key(VAX780, "timesharing-research", 1500, 1984)
        assert a == b and len(a) == 64

    def test_every_input_is_load_bearing(self):
        base = result_key(VAX780, "w", 1500, 1984, code="c0")
        assert result_key(VAX780.with_overrides(cache_bytes=4096),
                          "w", 1500, 1984, code="c0") != base
        assert result_key(VAX780, "other", 1500, 1984, code="c0") != base
        assert result_key(VAX780, "w", 3000, 1984, code="c0") != base
        assert result_key(VAX780, "w", 1500, 7, code="c0") != base
        assert result_key(VAX780, "w", 1500, 1984, code="c1") != base

    def test_code_version_shape(self):
        version = code_version()
        assert len(version) == 16
        assert int(version, 16) >= 0
        assert code_version() == version


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        assert key not in store
        assert store.get(key) is None
        record = {"cycles": 42, "cells": {"DECODE": {"COMPUTE": 7}}}
        store.put(key, record)
        assert key in store
        assert store.get(key) == record
        assert len(store) == 1

    def test_hit_miss_counters(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.get(key)
        store.put(key, {"cycles": 1})
        store.get(key)
        assert store.misses == 1 and store.hits == 1

    def test_corrupt_record_warns_and_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.put(key, {"cycles": 1})
        path = store._path(key)
        path.write_text("{truncated")
        with pytest.warns(UserWarning, match="unreadable store entry"):
            assert store.get(key) is None
        assert store.misses == 1

    def test_absent_record_misses_silently(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(key) is None
        assert store.misses == 1

    def test_records_are_valid_sorted_json(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.put(key, {"b": 2, "a": 1})
        text = store._path(key).read_text()
        assert json.loads(text) == {"a": 1, "b": 2}
        assert text.index('"a"') < text.index('"b"')

    def test_no_temp_file_left_behind(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.put(key, {"cycles": 1})
        leftovers = [p for p in (tmp_path / "store").rglob("*")
                     if p.is_file() and p.suffix != ".json"]
        assert leftovers == []


class TestQuarantine:
    def test_corrupt_entry_is_renamed_aside(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.put(key, {"cycles": 1})
        path = store._path(key)
        path.write_text("{truncated")
        with pytest.warns(UserWarning, match="quarantined as"):
            assert store.get(key) is None
        assert not path.exists()
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.read_text() == "{truncated"

    def test_quarantined_entry_warns_only_once(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.put(key, {"cycles": 1})
        store._path(key).write_text("{truncated")
        with pytest.warns(UserWarning):
            store.get(key)
        # The poisoned file is gone, so the next read is an ordinary
        # silent miss — no warning spam on every lookup.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(key) is None

    def test_key_is_writable_again_after_quarantine(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.put(key, {"cycles": 1})
        store._path(key).write_text("{truncated")
        with pytest.warns(UserWarning):
            store.get(key)
        store.put(key, {"cycles": 2})
        assert store.get(key) == {"cycles": 2}
        assert store.stats()["quarantined"] == 1


class TestStats:
    def test_empty_store(self, tmp_path):
        stats = ResultStore(tmp_path / "store").stats()
        assert stats == {"entries": 0, "bytes": 0, "quarantined": 0,
                         "versions": {}, "machines": {},
                         "workloads": {}}

    def test_counts_bytes_and_version_buckets(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for n, code in enumerate(("c0", "c0", "c1")):
            key = result_key(VAX780, f"w{n}", 100, 1, code=code)
            store.put(key, {"schema": 1, "code": code, "cycles": n})
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] == sum(
            path.stat().st_size for path in
            (tmp_path / "store" / "objects").glob("*/*.json"))
        assert stats["versions"] == {"schema=1 code=c0": 2,
                                     "schema=1 code=c1": 1}

    def test_legacy_records_land_in_unknown_bucket(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.put(key, {"cycles": 1})      # no schema/code fields
        assert store.stats()["versions"] == {"schema=? code=?": 1}

    def test_quarantined_files_counted_not_bucketed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        good = result_key(VAX780, "good", 100, 1, code="c")
        bad = result_key(VAX780, "bad", 100, 1, code="c")
        store.put(good, {"schema": 1, "code": "c"})
        store.put(bad, {"schema": 1, "code": "c"})
        store._path(bad).write_text("{truncated")
        with pytest.warns(UserWarning):
            store.get(bad)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["quarantined"] == 1
        assert sum(stats["versions"].values()) == 1

    def test_sweep_records_carry_their_version(self, smoke_store,
                                               smoke_sweep):
        """The runner stamps schema/code into every record, so a real
        sweep's store breaks down into exactly one version bucket."""
        from repro.explore.store import SCHEMA, code_version

        stats = smoke_store.stats()
        assert stats["entries"] == len(smoke_store)
        label = f"schema={SCHEMA} code={code_version()}"
        assert stats["versions"] == {label: stats["entries"]}


class TestHashedPaths:
    """Pin which sources shape the code-version digest.

    A result-shaping module silently dropping out of the digest would
    serve stale records across simulator changes — the very bug class
    the digest exists to prevent — so coverage is asserted explicitly.
    """

    def test_result_shaping_modules_are_hashed(self):
        from repro.explore.store import hashed_paths

        paths = hashed_paths()
        for path in ("cpu/ebox.py", "osim/executive.py",
                     "batch/engine.py", "batch/lanes.py",
                     "batch/histograms.py", "batch/__init__.py"):
            assert path in paths

    def test_observers_and_presenters_are_not(self):
        from repro.explore.store import hashed_paths

        paths = hashed_paths()
        assert not any(p.startswith(("explore/", "report/",
                                     "validate/", "obs/", "serve/",
                                     "refute/"))
                       for p in paths)
        assert "cli.py" not in paths
        assert "api.py" not in paths
