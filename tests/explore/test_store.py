"""Content-addressed result store behaviour."""

import json
import warnings

import pytest

from repro.explore.store import ResultStore, code_version, result_key
from repro.params import VAX780


class TestResultKey:
    def test_stable(self):
        a = result_key(VAX780, "timesharing-research", 1500, 1984)
        b = result_key(VAX780, "timesharing-research", 1500, 1984)
        assert a == b and len(a) == 64

    def test_every_input_is_load_bearing(self):
        base = result_key(VAX780, "w", 1500, 1984, code="c0")
        assert result_key(VAX780.with_overrides(cache_bytes=4096),
                          "w", 1500, 1984, code="c0") != base
        assert result_key(VAX780, "other", 1500, 1984, code="c0") != base
        assert result_key(VAX780, "w", 3000, 1984, code="c0") != base
        assert result_key(VAX780, "w", 1500, 7, code="c0") != base
        assert result_key(VAX780, "w", 1500, 1984, code="c1") != base

    def test_code_version_shape(self):
        version = code_version()
        assert len(version) == 16
        assert int(version, 16) >= 0
        assert code_version() == version


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        assert key not in store
        assert store.get(key) is None
        record = {"cycles": 42, "cells": {"DECODE": {"COMPUTE": 7}}}
        store.put(key, record)
        assert key in store
        assert store.get(key) == record
        assert len(store) == 1

    def test_hit_miss_counters(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.get(key)
        store.put(key, {"cycles": 1})
        store.get(key)
        assert store.misses == 1 and store.hits == 1

    def test_corrupt_record_warns_and_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.put(key, {"cycles": 1})
        path = store._path(key)
        path.write_text("{truncated")
        with pytest.warns(UserWarning, match="unreadable store entry"):
            assert store.get(key) is None
        assert store.misses == 1

    def test_absent_record_misses_silently(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(key) is None
        assert store.misses == 1

    def test_records_are_valid_sorted_json(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.put(key, {"b": 2, "a": 1})
        text = store._path(key).read_text()
        assert json.loads(text) == {"a": 1, "b": 2}
        assert text.index('"a"') < text.index('"b"')

    def test_no_temp_file_left_behind(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key(VAX780, "w", 100, 1, code="c")
        store.put(key, {"cycles": 1})
        leftovers = [p for p in (tmp_path / "store").rglob("*")
                     if p.is_file() and p.suffix != ".json"]
        assert leftovers == []


class TestHashedPaths:
    """Pin which sources shape the code-version digest.

    A result-shaping module silently dropping out of the digest would
    serve stale records across simulator changes — the very bug class
    the digest exists to prevent — so coverage is asserted explicitly.
    """

    def test_result_shaping_modules_are_hashed(self):
        from repro.explore.store import hashed_paths

        paths = hashed_paths()
        for path in ("cpu/ebox.py", "osim/executive.py",
                     "batch/engine.py", "batch/lanes.py",
                     "batch/histograms.py", "batch/__init__.py"):
            assert path in paths

    def test_observers_and_presenters_are_not(self):
        from repro.explore.store import hashed_paths

        paths = hashed_paths()
        assert not any(p.startswith(("explore/", "report/",
                                     "validate/", "obs/"))
                       for p in paths)
        assert "cli.py" not in paths
        assert "api.py" not in paths
