"""The workload sweep axis: population selection, eager validation,
and the store's per-workload inventory.

``workload=a,b`` is not a per-point parameter override — it replaces
the sweep's workload population.  The contracts: suffixes resolve to
full registered names before anything simulates, unknown and
trace-backed workloads fail eagerly (a typo must not surface an hour
into a sweep), an unsupported (machine, workload) pair fails before
the first shard, and stored records bucket by workload in
``stats()``.
"""

import pytest

from repro import api
from repro.explore import (Axis, ResultStore, SpaceError, SweepSpec,
                           parse_axis, run_sweep, valid_axes)
from repro.workloads.registry import paper_workload_names

PAPER = paper_workload_names()


class TestAxisParsing:
    def test_workload_is_a_valid_axis_name(self):
        assert "workload" in valid_axes()

    def test_suffixes_resolve_to_full_names(self):
        axis = parse_axis("workload=research,compiler-build")
        assert axis.values == ("timesharing-research",
                               "compiler-build")

    def test_unknown_workload_fails_at_parse_time(self):
        with pytest.raises(SpaceError) as err:
            parse_axis("workload=research,no-such-load")
        assert "no-such-load" in str(err.value)


class TestSpecValidation:
    def test_workload_axis_cannot_be_a_point_axis(self):
        with pytest.raises(SpaceError):
            SweepSpec(name="bad",
                      axes=(Axis("workload", ("rte-commercial",)),),
                      instructions=400)

    def test_unknown_population_workload_is_rejected(self):
        with pytest.raises(SpaceError) as err:
            SweepSpec(name="bad",
                      axes=(Axis("instructions", (400,)),),
                      instructions=400,
                      workloads=("no-such-load",))
        assert "no-such-load" in str(err.value)

    def test_empty_population_is_rejected(self):
        with pytest.raises(SpaceError):
            SweepSpec(name="bad",
                      axes=(Axis("instructions", (400,)),),
                      instructions=400, workloads=())

    def test_facade_pops_the_axis_into_the_population(self):
        spec = api.explore_spec(
            spec="smoke", axes=("workload=compiler-build,research",))
        assert spec.workloads == ("compiler-build",
                                  "timesharing-research")

    def test_unsupported_pair_fails_before_any_shard(self, tmp_path):
        spec = SweepSpec(
            name="refused",
            axes=(Axis("machine", ("uvax78032",)),),
            instructions=400,
            workloads=("transaction-decimal",))
        with pytest.raises(SpaceError) as err:
            run_sweep(spec, store=ResultStore(tmp_path), jobs=1)
        assert "transaction-decimal" in str(err.value)


class TestZooSweep:
    def test_sweeping_a_zoo_workload_end_to_end(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = SweepSpec(
            name="zoo-axis",
            axes=(Axis("instructions", (300, 600)),),
            mode="ofat", instructions=600, seed=7,
            workloads=("compiler-build",))
        result = run_sweep(spec, store=store, jobs=1)
        assert result.stats["simulated"] > 0
        for entry in result.points:
            assert set(entry["records"]) == {"compiler-build"}
        buckets = store.stats()["workloads"]
        assert buckets.get("compiler-build", 0) > 0
