"""Shared test fixtures: boot small kernel-mode programs on a VAX780."""

from __future__ import annotations

from repro.asm import assemble_text
from repro.cpu.machine import VAX780
from repro.vm.address import S0_BASE

#: Where test programs are assembled (S0, identity-mapped by boot()).
CODE_BASE = S0_BASE + 0x2000


def boot(asm_text: str, params=None, base: int = CODE_BASE) -> VAX780:
    """Assemble ``asm_text`` at ``base`` and boot a machine on it."""
    image = assemble_text(asm_text, base=base)
    machine = VAX780(params) if params is not None else VAX780()
    machine.boot(image)
    return machine


def run(asm_text: str, max_instructions: int = 100000, params=None,
        base: int = CODE_BASE) -> VAX780:
    """Boot and run to HALT; asserts the program actually halted."""
    machine = boot(asm_text, params=params, base=base)
    machine.run(max_instructions)
    assert machine.halted, "program did not reach HALT"
    return machine


def regs(machine: VAX780):
    """The general registers, for terse assertions."""
    return machine.ebox.registers
