"""Determinism and serial/parallel equivalence of the measurement runs.

The performance work (fast-forwarded idle windows, inlined hot paths,
process-level parallelism) is only admissible because it changes *when
wall-clock time is spent*, never *what is counted*.  These tests pin
that contract: repeated serial runs are bit-identical, and the
process-pool path produces byte-for-byte the same measurements as the
serial path for the same seed.
"""

from repro.workloads import engine
from repro.workloads.parallel import run_standard_parallel
from repro.workloads.profiles import STANDARD_PROFILES

INSTRUCTIONS = 1500
SEED = 1984


def _fingerprint(measurement):
    """Every observable of a measurement, as a comparable value."""
    h = measurement.histogram
    return (
        measurement.cycles,
        list(h.nonstalled),
        list(h.stalled),
        {name: getattr(measurement.tracer, name)
         for name in measurement.tracer._SCALARS},
        measurement.tracer.group_counts,
        vars(measurement.memory)
        if hasattr(measurement.memory, "__dict__")
        else {s: getattr(measurement.memory, s)
              for klass in type(measurement.memory).__mro__
              for s in getattr(klass, "__slots__", ())},
    )


def _serial_composite():
    engine.clear_cache()
    return engine.standard_composite(instructions=INSTRUCTIONS,
                                          seed=SEED)


def test_serial_runs_are_bit_identical():
    first = _fingerprint(_serial_composite())
    second = _fingerprint(_serial_composite())
    assert first == second


def test_parallel_matches_serial_bit_for_bit():
    engine.clear_cache()
    serial = engine.run_standard_experiments(
        instructions=INSTRUCTIONS, seed=SEED)
    parallel = run_standard_parallel(INSTRUCTIONS, seed=SEED, jobs=5)
    assert set(serial) == set(parallel)
    for name in serial:
        assert _fingerprint(serial[name]) == _fingerprint(parallel[name]), \
            f"workload {name} diverged between serial and parallel runs"


def test_parallel_composite_matches_serial_composite():
    engine.clear_cache()
    serial = engine.standard_composite(instructions=INSTRUCTIONS,
                                            seed=SEED)
    engine.clear_cache()
    parallel = engine.standard_composite(instructions=INSTRUCTIONS,
                                              seed=SEED, jobs=5)
    assert _fingerprint(serial) == _fingerprint(parallel)


def test_parallel_jobs_one_is_in_process():
    """jobs=1 must not spawn workers (it is the serial path)."""
    engine.clear_cache()
    results = run_standard_parallel(INSTRUCTIONS, seed=SEED, jobs=1)
    assert len(results) == len(STANDARD_PROFILES)
