"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "5050" in result.stdout
        assert "TABLE 8" in result.stdout

    def test_timesharing_characterization(self):
        result = run_example("timesharing_characterization.py", "4000")
        assert result.returncode == 0, result.stderr
        for marker in ("TABLE 1", "TABLE 8", "SECTION 4", "FIGURE 1"):
            assert marker in result.stdout, marker

    def test_workload_comparison(self):
        result = run_example("workload_comparison.py", "4000")
        assert result.returncode == 0, result.stderr
        assert "CPI" in result.stdout

    def test_microcode_hotspots(self):
        result = run_example("microcode_hotspots.py", "4000")
        assert result.returncode == 0, result.stderr
        assert "routine.slot" in result.stdout

    def test_tb_cache_sensitivity(self):
        result = run_example("tb_cache_sensitivity.py", "3000")
        assert result.returncode == 0, result.stderr
        assert "11/780" in result.stdout
