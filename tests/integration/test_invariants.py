"""Property-based whole-machine invariants on randomly generated programs.

Hypothesis drives the synthetic code generator with arbitrary seeds and
small mix perturbations; every resulting program must execute without
simulator errors, and the measurement invariants (cycle conservation,
histogram/tracer agreement) must hold for all of them.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import Measurement, Reduction, table8
from repro.cpu.machine import VAX780
from repro.osim.executive import Executive
from repro.validate import check_machine
from repro.workloads.profiles import MixProfile


def run_random_workload(seed: int, instructions: int = 3000,
                        **profile_overrides):
    profile = MixProfile(name=f"hyp-{seed}", description="hypothesis",
                         processes=2, code_kb=16, data_kb=16,
                         **profile_overrides)
    machine = VAX780()
    executive = Executive(machine, profile, seed=seed)
    executive.boot()
    executive.run(instructions, cycle_limit=instructions * 1000)
    return machine


class TestWholeMachineInvariants:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=8, deadline=None)
    def test_random_workloads_execute_cleanly(self, seed):
        machine = run_random_workload(seed)
        assert machine.tracer.instructions >= 3000

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=5, deadline=None)
    def test_conservation_laws_hold_exactly(self, seed):
        machine = run_random_workload(seed)
        check_machine(machine, f"hyp-{seed}").raise_on_failure()

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=5, deadline=None)
    def test_histogram_and_tracer_agree(self, seed):
        machine = run_random_workload(seed)
        red = Reduction(machine.board.snapshot())
        assert red.instructions == machine.tracer.instructions
        for group, count in machine.tracer.group_counts.items():
            assert red.group_instructions[group] == count

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=5, deadline=None)
    def test_cpi_in_plausible_band(self, seed):
        machine = run_random_workload(seed)
        result = table8(Measurement.capture("h", machine))
        # Any VAX-like workload should land within a broad CPI band; a
        # value outside it means broken accounting, not a slow workload.
        assert 3.0 < result.cycles_per_instruction < 40.0

    @given(st.integers(0, 10 ** 5),
           st.floats(min_value=0.0, max_value=6.0),
           st.floats(min_value=0.0, max_value=12.0))
    @settings(max_examples=5, deadline=None)
    def test_mix_perturbations_execute(self, seed, char_w, float_w):
        machine = run_random_workload(seed, char_ops=char_w,
                                      float_ops=float_w)
        assert machine.tracer.instructions >= 3000

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=4, deadline=None)
    def test_branch_taken_never_exceeds_executed(self, seed):
        machine = run_random_workload(seed)
        t = machine.tracer
        for family, executed in t.branches_executed.items():
            assert t.branches_taken[family] <= executed

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=4, deadline=None)
    def test_stall_columns_nonnegative_and_bounded(self, seed):
        machine = run_random_workload(seed)
        result = table8(Measurement.capture("h", machine))
        from repro.ucode.rows import Column
        for col, per_instr in result.column_totals.items():
            assert per_instr >= 0
        # Stalls cannot exceed total cycles.
        stalls = (result.column_totals[Column.RSTALL]
                  + result.column_totals[Column.WSTALL]
                  + result.column_totals[Column.IBSTALL])
        assert stalls < result.cycles_per_instruction
