"""Shape reproduction checks on a reduced composite run.

These are the same checks the benchmarks assert, run at a smaller
measurement window so the unit suite stays fast.  Tolerances here are
looser than the benchmark ones because per-instruction ratios of rare
events are noisier at 8k instructions per workload.
"""

import pytest

from repro.analysis import (Measurement, section4, table1, table2, table7,
                            table8, table9)
from repro.arch.groups import OpcodeGroup
from repro.report import paper
from repro.report.compare import within_factor
from repro.ucode.rows import Column, Row
from repro.workloads.engine import run_workload, standard_composite
from repro.workloads.profiles import STANDARD_PROFILES


@pytest.fixture(scope="module")
def comp():
    return standard_composite(instructions=8000, seed=2024)


class TestCompositeShape:
    def test_cpi_within_factor_two(self, comp):
        result = table8(comp)
        assert within_factor(result.cycles_per_instruction,
                             paper.CYCLES_PER_INSTRUCTION, 2.0)

    def test_simple_group_dominates(self, comp):
        result = table1(comp)
        freq = result.frequency_percent
        assert freq[OpcodeGroup.SIMPLE] > 70
        assert freq[OpcodeGroup.SIMPLE] < 95

    def test_rare_groups_are_rare(self, comp):
        freq = table1(comp).frequency_percent
        assert freq[OpcodeGroup.CHARACTER] < 3
        assert freq[OpcodeGroup.DECIMAL] < 1

    def test_group_cost_spans_two_orders(self, comp):
        totals = table9(comp).totals
        assert totals[OpcodeGroup.SIMPLE] < 2
        assert totals[OpcodeGroup.CHARACTER] > 50

    def test_callret_is_expensive_per_execution(self, comp):
        totals = table9(comp).totals
        assert totals[OpcodeGroup.CALLRET] > \
            10 * totals[OpcodeGroup.SIMPLE]

    def test_decode_row_near_one_plus_stall(self, comp):
        result = table8(comp)
        decode_compute = result.cells[(Row.DECODE, Column.COMPUTE)]
        assert decode_compute == pytest.approx(1.0, abs=0.01)
        assert result.cells[(Row.DECODE, Column.IBSTALL)] > 0.1

    def test_decode_plus_spec_is_large_share(self, comp):
        # §5: "almost half of all the time went into decode and
        # specifier processing".
        result = table8(comp)
        share = (result.row_totals[Row.DECODE]
                 + result.row_totals[Row.SPEC1]
                 + result.row_totals[Row.SPEC26]
                 + result.row_totals[Row.BDISP]) \
            / result.cycles_per_instruction
        assert 0.25 < share < 0.65

    def test_reads_exceed_writes_about_two_to_one(self, comp):
        result = table8(comp)
        reads = result.column_totals[Column.READ]
        writes = result.column_totals[Column.WRITE]
        assert 1.2 < reads / writes < 3.5

    def test_branch_totals(self, comp):
        result = table2(comp)
        assert 20 < result.total_percent < 50
        assert 55 < result.total_taken_percent < 85

    def test_loop_branches_mostly_taken(self, comp):
        result = table2(comp)
        loops = next(r for r in result.rows if r.label == "Loop branches")
        assert loops.percent_taken > 75

    def test_headways_within_factor(self, comp):
        result = table7(comp)
        assert within_factor(result.interrupt_headway,
                             paper.TABLE7["interrupts"], 3.0)
        assert within_factor(result.context_switch_headway,
                             paper.TABLE7["context_switches"], 3.0)

    def test_tb_service_cost(self, comp):
        events = section4(comp)
        assert within_factor(events.tb_service_cycles,
                             paper.SECTION4["tb_service_cycles"], 1.5)

    def test_ib_delivers_under_capacity(self, comp):
        events = section4(comp)
        assert 1.0 < events.ib_references_per_instruction < 4.0
        assert events.ib_bytes_per_reference < 4.0

    def test_avg_instruction_size(self, comp):
        events = section4(comp)
        assert within_factor(events.avg_instruction_bytes,
                             paper.SECTION4["avg_instruction_bytes"], 1.4)


class TestPerWorkloadVariation:
    def test_scientific_has_more_float(self):
        sci = run_workload(STANDARD_PROFILES[3], 8000, seed=2024)
        res = run_workload(STANDARD_PROFILES[0], 8000, seed=2024)
        f_sci = table1(sci).frequency_percent[OpcodeGroup.FLOAT]
        f_res = table1(res).frequency_percent[OpcodeGroup.FLOAT]
        assert f_sci > f_res

    def test_commercial_has_more_decimal(self):
        com = run_workload(STANDARD_PROFILES[4], 8000, seed=2024)
        sci = run_workload(STANDARD_PROFILES[3], 8000, seed=2024)
        d_com = table1(com).frequency_percent[OpcodeGroup.DECIMAL]
        d_sci = table1(sci).frequency_percent[OpcodeGroup.DECIMAL]
        assert d_com >= d_sci

    def test_composite_is_sum_of_five(self, comp):
        runs = [run_workload(p, 8000, seed=2024)
                for p in STANDARD_PROFILES]
        total = sum(r.tracer.instructions for r in runs)
        assert comp.tracer.instructions == total
