"""The analytical CPI tier: error bounds, kernel exactness, MACHINES.json."""

import json
import pathlib

import pytest

from repro.machines import (ERROR_BOUND, EXTRAPOLATION_BOUND,
                            TRANSIENT_BOUND, AnalyticalError, calibrate,
                            check_estimate, kernel_mix, machine_names)
from repro.machines.analytical import CALIBRATION_ANCHORS
from repro.ubench import model, suite
from repro.workloads.profiles import STANDARD_PROFILES

#: Scaled-down anchor envelope so the whole-workload checks run in
#: test time; the full-scale envelope backs the committed MACHINES.json.
MINI_ANCHORS = (1000, 3000, 5000, 7000, 9000)
#: Validation budgets inside the mini envelope, off every anchor.
MINI_TARGETS = (4000, 6000)

PROFILE_NAMES = [p.name for p in STANDARD_PROFILES]


class TestWorkloadEstimates:
    @pytest.mark.parametrize("machine", machine_names())
    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_within_recorded_bound_on_every_workload(self, profile,
                                                     machine):
        mix = calibrate(profile, machine, anchors=MINI_ANCHORS)
        for target in MINI_TARGETS:
            check = check_estimate(mix, target)
            assert check["ok"], (
                f"{profile} on {machine} at {target}: analytical "
                f"{check['analytical_cpi']} vs simulated "
                f"{check['simulated_cpi']} "
                f"(rel_err {check['rel_err']} > {ERROR_BOUND})")

    def test_estimate_carries_the_decomposition(self):
        mix = calibrate("rte-educational", "vax780",
                        anchors=MINI_ANCHORS)
        est = mix.estimate(MINI_TARGETS[0])
        assert est.cpi == pytest.approx(sum(est.row_totals.values()))
        assert est.cpi == pytest.approx(sum(est.column_totals.values()))
        assert est.cycles == pytest.approx(est.cpi * est.instructions)

    def test_uvax_has_no_stall_columns(self):
        # no IB, no miss penalty, no write recycle: every cycle is busy
        mix = calibrate("rte-educational", "uvax78032",
                        anchors=MINI_ANCHORS)
        est = mix.estimate(MINI_TARGETS[0])
        for column in ("RSTALL", "WSTALL", "IBSTALL"):
            assert est.column_totals.get(column, 0.0) == 0.0

    def test_calibration_rejects_degenerate_anchors(self):
        with pytest.raises(AnalyticalError):
            calibrate("rte-educational", anchors=(2000,))
        with pytest.raises(AnalyticalError):
            calibrate("rte-educational", anchors=(0, 2000))

    def test_estimate_rejects_a_nonpositive_budget(self):
        mix = calibrate("rte-educational", anchors=MINI_ANCHORS)
        with pytest.raises(AnalyticalError):
            mix.estimate(0)

    def test_unknown_profile_is_an_analytical_error(self):
        with pytest.raises(AnalyticalError):
            calibrate("no-such-workload", anchors=MINI_ANCHORS)


class TestColdStartSegment:
    """Budgets between the first two anchors carry the widened,
    documented transient bound — the divergence the refute campaign
    surfaced (rel err up to 0.117 at the segment midpoint, where the
    warmup transient makes the cycle curve concave)."""

    def test_first_segment_interior_is_flagged_transient(self):
        mix = calibrate("timesharing-cpu-dev", "vax780",
                        anchors=MINI_ANCHORS)
        est = mix.estimate(1500)
        assert est.transient and not est.extrapolated
        assert est.error_bound == TRANSIENT_BOUND

    def test_anchors_and_later_segments_keep_the_tight_bound(self):
        mix = calibrate("timesharing-cpu-dev", "vax780",
                        anchors=MINI_ANCHORS)
        for budget in (MINI_ANCHORS[0], MINI_ANCHORS[1],
                       MINI_TARGETS[0]):
            est = mix.estimate(budget)
            assert not est.transient, budget
            assert est.error_bound == ERROR_BOUND

    @pytest.mark.parametrize("machine", machine_names())
    def test_worst_observed_midpoints_hold_the_transient_bound(
            self, machine):
        # The exact points the refute campaign refuted under the old
        # uniform 5% bound (worst: timesharing-cpu-dev at 1500).
        mix = calibrate("timesharing-cpu-dev", machine,
                        anchors=MINI_ANCHORS)
        for budget in (1500, 2000, 2500):
            check = check_estimate(mix, budget)
            assert check["transient"]
            assert check["error_bound"] == TRANSIENT_BOUND
            assert check["ok"], (
                f"{machine} at {budget}: rel_err {check['rel_err']} > "
                f"{TRANSIENT_BOUND}")


class TestExtrapolationEdges:
    """Outside-envelope behavior is explicit: flagged, bounded, or
    refused — on each machine, at both edges."""

    @pytest.fixture(scope="class")
    def mixes(self):
        return {machine: calibrate("rte-educational", machine,
                                   anchors=MINI_ANCHORS)
                for machine in machine_names()}

    def test_window_widens_the_envelope_by_a_quarter(self, mixes):
        for mix in mixes.values():
            assert mix.envelope == (MINI_ANCHORS[0], MINI_ANCHORS[-1])
            assert mix.window == (750, 11250)

    @pytest.mark.parametrize("machine", machine_names())
    def test_below_envelope_extrapolates_within_the_wider_bound(
            self, mixes, machine):
        mix = mixes[machine]
        est = mix.estimate(mix.window[0])
        assert est.extrapolated
        assert est.error_bound == EXTRAPOLATION_BOUND
        check = check_estimate(mix, mix.window[0])
        assert check["extrapolated"]
        assert check["ok"], (
            f"{machine} low edge: rel_err {check['rel_err']} > "
            f"{EXTRAPOLATION_BOUND}")

    @pytest.mark.parametrize("machine", machine_names())
    def test_above_envelope_extrapolates_within_the_wider_bound(
            self, mixes, machine):
        mix = mixes[machine]
        est = mix.estimate(mix.window[1])
        assert est.extrapolated
        assert est.error_bound == EXTRAPOLATION_BOUND
        check = check_estimate(mix, mix.window[1])
        assert check["extrapolated"]
        assert check["ok"], (
            f"{machine} high edge: rel_err {check['rel_err']} > "
            f"{EXTRAPOLATION_BOUND}")

    @pytest.mark.parametrize("machine", machine_names())
    def test_beyond_the_window_refuses_both_ways(self, mixes, machine):
        mix = mixes[machine]
        with pytest.raises(AnalyticalError, match="honored window"):
            mix.estimate(mix.window[0] - 1)
        with pytest.raises(AnalyticalError, match="honored window"):
            mix.estimate(mix.window[1] + 1)

    def test_declining_extrapolation_raises_inside_the_window(self,
                                                              mixes):
        mix = mixes["vax780"]
        with pytest.raises(AnalyticalError, match="declined"):
            mix.estimate(mix.window[0], extrapolate=False)
        # Inside the envelope the flag is irrelevant.
        est = mix.estimate(MINI_TARGETS[0], extrapolate=False)
        assert not est.extrapolated
        assert est.error_bound == ERROR_BOUND

    def test_single_anchor_kernel_mixes_are_exempt(self):
        kernel = suite.select(smoke=True, machine="vax780")[0]
        mix = kernel_mix(kernel, "vax780")
        est = mix.estimate(40 * kernel.ipc)  # far past the one anchor
        assert not est.extrapolated
        assert est.error_bound == 0.0
        assert est.to_json()["error_bound"] == 0.0


class TestKernelExactness:
    """kernel_mix agrees with the ubench busy-cycle model exactly."""

    @pytest.mark.parametrize("machine", machine_names())
    def test_matches_predict_kernel_at_any_copy_count(self, machine):
        from repro.machines import get_machine

        spec = get_machine(machine)
        kernels = suite.select(smoke=True, machine=machine)
        assert kernels, f"smoke suite empty on {machine}"
        for kernel in kernels:
            predicted = model.predict_kernel(kernel, spec.params)
            per_copy = sum(predicted[b] for b in model.BUCKETS)
            mix = kernel_mix(kernel, machine)
            for copies in (1, 7):
                est = mix.estimate(copies * kernel.ipc)
                assert est.cycles == pytest.approx(copies * per_copy), \
                    f"{kernel.name} on {machine} at {copies} copies"


class TestCommittedMachinesReport:
    """The committed MACHINES.json holds the acceptance numbers."""

    @pytest.fixture(scope="class")
    def doc(self):
        path = (pathlib.Path(__file__).resolve().parents[2]
                / "MACHINES.json")
        assert path.exists(), "MACHINES.json missing from the repo root"
        return json.loads(path.read_text())

    def test_schema_and_provenance(self, doc):
        from repro.report.machines import MACHINES_SCHEMA

        assert doc["schema"] == MACHINES_SCHEMA
        assert tuple(doc["anchors"]) == CALIBRATION_ANCHORS
        assert doc["error_bound"] == ERROR_BOUND
        assert set(doc["machines"]) == set(machine_names())

    def test_every_workload_is_inside_the_error_bound(self, doc):
        for name, machine in doc["machines"].items():
            assert set(machine["workloads"]) == set(PROFILE_NAMES)
            for wname, row in machine["workloads"].items():
                assert row["analytical_ok"], f"{name}/{wname}"
                assert row["analytical_error"] <= doc["error_bound"]
        assert doc["analytical_all_ok"]
        assert doc["analytical_worst_error"] <= doc["error_bound"]

    def test_the_780_composite_is_bit_identical_to_the_seed(self, doc):
        composite = doc["machines"]["vax780"]["composite"]
        assert composite["instructions"] == 300_000
        assert composite["cycles"] == 2_082_708

    def test_the_78032_lands_at_its_published_cpi(self, doc):
        composite = doc["machines"]["uvax78032"]["composite"]
        assert 5.0 <= composite["cpi"] <= 6.0

    def test_comparison_carries_cpi_ratios(self, doc):
        assert set(doc["comparison"]) == set(PROFILE_NAMES)
        for row in doc["comparison"].values():
            ratio = row["cpi_ratio_uvax78032"]
            assert ratio == pytest.approx(
                row["vax780"] / row["uvax78032"], rel=1e-4)
