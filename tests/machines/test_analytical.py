"""The analytical CPI tier: error bounds, kernel exactness, MACHINES.json."""

import json
import pathlib

import pytest

from repro.machines import (ERROR_BOUND, AnalyticalError, calibrate,
                            check_estimate, kernel_mix, machine_names)
from repro.machines.analytical import CALIBRATION_ANCHORS
from repro.ubench import model, suite
from repro.workloads.profiles import STANDARD_PROFILES

#: Scaled-down anchor envelope so the whole-workload checks run in
#: test time; the full-scale envelope backs the committed MACHINES.json.
MINI_ANCHORS = (1000, 3000, 5000, 7000, 9000)
#: Validation budgets inside the mini envelope, off every anchor.
MINI_TARGETS = (4000, 6000)

PROFILE_NAMES = [p.name for p in STANDARD_PROFILES]


class TestWorkloadEstimates:
    @pytest.mark.parametrize("machine", machine_names())
    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_within_recorded_bound_on_every_workload(self, profile,
                                                     machine):
        mix = calibrate(profile, machine, anchors=MINI_ANCHORS)
        for target in MINI_TARGETS:
            check = check_estimate(mix, target)
            assert check["ok"], (
                f"{profile} on {machine} at {target}: analytical "
                f"{check['analytical_cpi']} vs simulated "
                f"{check['simulated_cpi']} "
                f"(rel_err {check['rel_err']} > {ERROR_BOUND})")

    def test_estimate_carries_the_decomposition(self):
        mix = calibrate("rte-educational", "vax780",
                        anchors=MINI_ANCHORS)
        est = mix.estimate(MINI_TARGETS[0])
        assert est.cpi == pytest.approx(sum(est.row_totals.values()))
        assert est.cpi == pytest.approx(sum(est.column_totals.values()))
        assert est.cycles == pytest.approx(est.cpi * est.instructions)

    def test_uvax_has_no_stall_columns(self):
        # no IB, no miss penalty, no write recycle: every cycle is busy
        mix = calibrate("rte-educational", "uvax78032",
                        anchors=MINI_ANCHORS)
        est = mix.estimate(MINI_TARGETS[0])
        for column in ("RSTALL", "WSTALL", "IBSTALL"):
            assert est.column_totals.get(column, 0.0) == 0.0

    def test_calibration_rejects_degenerate_anchors(self):
        with pytest.raises(AnalyticalError):
            calibrate("rte-educational", anchors=(2000,))
        with pytest.raises(AnalyticalError):
            calibrate("rte-educational", anchors=(0, 2000))

    def test_estimate_rejects_a_nonpositive_budget(self):
        mix = calibrate("rte-educational", anchors=MINI_ANCHORS)
        with pytest.raises(AnalyticalError):
            mix.estimate(0)

    def test_unknown_profile_is_an_analytical_error(self):
        with pytest.raises(AnalyticalError):
            calibrate("no-such-workload", anchors=MINI_ANCHORS)


class TestKernelExactness:
    """kernel_mix agrees with the ubench busy-cycle model exactly."""

    @pytest.mark.parametrize("machine", machine_names())
    def test_matches_predict_kernel_at_any_copy_count(self, machine):
        from repro.machines import get_machine

        spec = get_machine(machine)
        kernels = suite.select(smoke=True, machine=machine)
        assert kernels, f"smoke suite empty on {machine}"
        for kernel in kernels:
            predicted = model.predict_kernel(kernel, spec.params)
            per_copy = sum(predicted[b] for b in model.BUCKETS)
            mix = kernel_mix(kernel, machine)
            for copies in (1, 7):
                est = mix.estimate(copies * kernel.ipc)
                assert est.cycles == pytest.approx(copies * per_copy), \
                    f"{kernel.name} on {machine} at {copies} copies"


class TestCommittedMachinesReport:
    """The committed MACHINES.json holds the acceptance numbers."""

    @pytest.fixture(scope="class")
    def doc(self):
        path = (pathlib.Path(__file__).resolve().parents[2]
                / "MACHINES.json")
        assert path.exists(), "MACHINES.json missing from the repo root"
        return json.loads(path.read_text())

    def test_schema_and_provenance(self, doc):
        from repro.report.machines import MACHINES_SCHEMA

        assert doc["schema"] == MACHINES_SCHEMA
        assert tuple(doc["anchors"]) == CALIBRATION_ANCHORS
        assert doc["error_bound"] == ERROR_BOUND
        assert set(doc["machines"]) == set(machine_names())

    def test_every_workload_is_inside_the_error_bound(self, doc):
        for name, machine in doc["machines"].items():
            assert set(machine["workloads"]) == set(PROFILE_NAMES)
            for wname, row in machine["workloads"].items():
                assert row["analytical_ok"], f"{name}/{wname}"
                assert row["analytical_error"] <= doc["error_bound"]
        assert doc["analytical_all_ok"]
        assert doc["analytical_worst_error"] <= doc["error_bound"]

    def test_the_780_composite_is_bit_identical_to_the_seed(self, doc):
        composite = doc["machines"]["vax780"]["composite"]
        assert composite["instructions"] == 300_000
        assert composite["cycles"] == 2_082_708

    def test_the_78032_lands_at_its_published_cpi(self, doc):
        composite = doc["machines"]["uvax78032"]["composite"]
        assert 5.0 <= composite["cpi"] <= 6.0

    def test_comparison_carries_cpi_ratios(self, doc):
        assert set(doc["comparison"]) == set(PROFILE_NAMES)
        for row in doc["comparison"].values():
            ratio = row["cpi_ratio_uvax78032"]
            assert ratio == pytest.approx(
                row["vax780"] / row["uvax78032"], rel=1e-4)
