"""Backend isolation: the 780 is untouched, the 78032 refuses its gaps."""

import pytest

from repro.cpu.faults import UnsupportedInstructionError
from repro.cpu.machine import VAX780
from repro.machines import get_machine
from repro.ubench import runner, suite
from repro.ubench.kernels import emit

#: Kernels exercising microcode the 78032 does not carry.
SUBSET_KERNELS = ("cmpc3_8", "movp_4")


class TestSubsetRefusal:
    @pytest.mark.parametrize("name", SUBSET_KERNELS)
    def test_uvax_refuses_paper_only_instructions(self, name):
        kernel = suite.kernel_by_name(name)
        with pytest.raises(UnsupportedInstructionError) as err:
            runner.run_kernel(kernel, machine="uvax78032")
        message = str(err.value)
        assert "uvax78032" in message
        assert "not implemented" in message

    @pytest.mark.parametrize("name", SUBSET_KERNELS)
    def test_the_780_still_runs_them(self, name):
        kernel = suite.kernel_by_name(name)
        result = runner.run_kernel(kernel, machine="vax780")
        assert result["exact"] and result["reconciled"]

    def test_suite_selection_hides_unsupported_kernels(self):
        names_780 = {k.name for k in suite.select(machine="vax780")}
        names_uvax = {k.name for k in suite.select(machine="uvax78032")}
        assert set(SUBSET_KERNELS) <= names_780
        assert not set(SUBSET_KERNELS) & names_uvax
        assert names_uvax < names_780


class TestVax780BitIdentity:
    """The registry's vax780 is the pre-registry simulator, exactly."""

    def _cycles(self, machine, emitted):
        machine.boot(emitted.image)
        total = (emitted.setup_instructions + emitted.warmup_instructions
                 + emitted.measured_instructions)
        ran = machine.run(max_instructions=total)
        assert ran == total
        return machine.cycles

    @pytest.mark.parametrize("name", ["movl_literal", "cmpc3_8"])
    def test_registry_build_matches_direct_construction(self, name):
        emitted = emit(suite.kernel_by_name(name), warmup=1, copies=3)
        direct = self._cycles(VAX780(), emitted)
        via_registry = self._cycles(get_machine("vax780").build(),
                                    emitted)
        assert direct == via_registry
