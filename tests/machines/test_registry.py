"""The machine registry: names, defaults, validation, facade."""

import pytest

from repro import api
from repro.machines import (DEFAULT_MACHINE, MACHINES, MachineError,
                            get_machine, machine_names, validate_machine)
from repro.params import VAX780 as VAX780_PARAMS


class TestRegistry:
    def test_both_machines_registered(self):
        assert machine_names() == ("vax780", "uvax78032")

    def test_default_is_the_papers_machine(self):
        assert DEFAULT_MACHINE == "vax780"
        assert validate_machine(None) == "vax780"

    def test_unknown_machine_lists_the_registry(self):
        with pytest.raises(MachineError) as err:
            validate_machine("pdp11")
        assert "pdp11" in str(err.value)
        for name in machine_names():
            assert name in str(err.value)

    def test_vax780_spec_is_the_stock_params(self):
        spec = get_machine("vax780")
        assert spec.params is VAX780_PARAMS
        assert not spec.subset

    def test_uvax_is_a_subset_machine(self):
        spec = get_machine("uvax78032")
        assert spec.subset
        unsupported = set(spec.params.unsupported_families)
        # all packed decimal, every string family except the MOVCs
        assert "MOVP" in unsupported and "CMPC" in unsupported
        assert "MOVC" not in unsupported

    def test_uvax_profile_adaptation_strips_the_subset(self):
        from repro.workloads.profiles import STANDARD_PROFILES

        spec = get_machine("uvax78032")
        for profile in STANDARD_PROFILES:
            adapted = spec.adapt_profile(profile)
            assert adapted.decimal_ops == 0.0
            assert set(adapted.char_opcodes) <= {"MOVC3", "MOVC5"}

    def test_vax780_profile_adaptation_is_identity(self):
        from repro.workloads.profiles import STANDARD_PROFILES

        spec = get_machine("vax780")
        for profile in STANDARD_PROFILES:
            assert spec.adapt_profile(profile) is profile

    def test_built_machines_carry_their_registry_name(self):
        for name in machine_names():
            assert get_machine(name).build().name == name


class TestFacade:
    def test_machines_facade_lists_the_registry(self):
        result = api.machines()
        names = [m["name"] for m in result.machines]
        assert names == list(machine_names())
        by_name = {m["name"]: m for m in result.machines}
        assert by_name["vax780"]["default"]
        assert not by_name["uvax78032"]["default"]
        assert by_name["uvax78032"]["subset"]
        assert by_name["vax780"]["cpi_nominal"] == 10.6

    def test_unknown_machine_rejected_before_simulation(self):
        for call in (
                lambda: api.characterize(machine="pdp11", smoke=True),
                lambda: api.run_workload("rte-educational",
                                         machine="pdp11", smoke=True),
                lambda: api.ubench(machine="pdp11", smoke=True),
                lambda: api.validate(machine="pdp11", smoke=True),
        ):
            with pytest.raises(api.ApiError) as err:
                call()
            assert "pdp11" in str(err.value)
            assert "vax780" in str(err.value)

    def test_fuzzing_is_refused_on_a_subset_machine(self):
        with pytest.raises(api.ApiError) as err:
            api.validate(machine="uvax78032", fuzz_cases=2, smoke=True)
        assert "fuzz" in str(err.value).lower()
