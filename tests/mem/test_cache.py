"""Unit tests for the cache timing model."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import Cache, D_STREAM, I_STREAM


def make_cache(**kwargs):
    defaults = dict(size_bytes=8 * 1024, ways=2, block_bytes=8)
    defaults.update(kwargs)
    return Cache(**defaults)


class TestCacheGeometry:
    def test_780_geometry(self):
        cache = make_cache()
        assert cache.sets == 512
        assert cache.ways == 2
        assert cache.block_bytes == 8

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            make_cache(block_bytes=6)

    def test_size_must_divide(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, ways=2, block_bytes=8)


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.read(0x1000, D_STREAM)
        assert cache.read(0x1000, D_STREAM)
        assert cache.stats.read_misses[D_STREAM] == 1
        assert cache.stats.read_hits[D_STREAM] == 1

    def test_same_block_hits(self):
        cache = make_cache()
        cache.read(0x1000, D_STREAM)
        assert cache.read(0x1004, D_STREAM)  # same 8-byte block

    def test_adjacent_block_misses(self):
        cache = make_cache()
        cache.read(0x1000, D_STREAM)
        assert not cache.read(0x1008, D_STREAM)

    def test_two_way_associativity(self):
        cache = make_cache()
        # Two addresses mapping to the same set can coexist.
        stride = cache.sets * cache.block_bytes
        cache.read(0x0, D_STREAM)
        cache.read(stride, D_STREAM)
        assert cache.probe(0x0)
        assert cache.probe(stride)

    def test_eviction_on_third_way_conflict(self):
        cache = make_cache()
        stride = cache.sets * cache.block_bytes
        cache.read(0, D_STREAM)
        cache.read(stride, D_STREAM)
        cache.read(2 * stride, D_STREAM)
        survivors = [cache.probe(i * stride) for i in range(3)]
        assert survivors.count(True) == 2
        assert cache.probe(2 * stride)  # newest always present

    def test_write_miss_does_not_allocate(self):
        cache = make_cache()
        assert not cache.write(0x2000)
        assert not cache.probe(0x2000)
        assert cache.stats.write_misses == 1

    def test_write_hit_counted(self):
        cache = make_cache()
        cache.read(0x2000, D_STREAM)
        assert cache.write(0x2000)
        assert cache.stats.write_hits == 1

    def test_streams_tracked_separately(self):
        cache = make_cache()
        cache.read(0x100, I_STREAM)
        cache.read(0x900, D_STREAM)
        assert cache.stats.read_misses[I_STREAM] == 1
        assert cache.stats.read_misses[D_STREAM] == 1

    def test_invalidate(self):
        cache = make_cache()
        cache.read(0x100, D_STREAM)
        cache.invalidate()
        assert not cache.probe(0x100)

    def test_miss_rate(self):
        cache = make_cache()
        cache.read(0x100, D_STREAM)
        cache.read(0x100, D_STREAM)
        cache.read(0x100, D_STREAM)
        cache.read(0x100, D_STREAM)
        assert cache.stats.read_miss_rate(D_STREAM) == 0.25

    @given(st.lists(st.integers(0, 0xFFFFF8), min_size=1, max_size=200))
    def test_repeat_of_recent_read_always_hits(self, addrs):
        cache = make_cache()
        for addr in addrs:
            cache.read(addr, D_STREAM)
            assert cache.read(addr, D_STREAM), "immediate re-read must hit"
