"""Unit tests for SBI, write buffer and the composed memory subsystem."""

import pytest

from repro.mem.physmem import MemoryError780, PhysicalMemory
from repro.mem.sbi import SBI
from repro.mem.subsystem import MemorySubsystem
from repro.mem.writebuffer import WriteBuffer
from repro.params import VAX780


class TestPhysicalMemory:
    def test_read_write_roundtrip(self):
        mem = PhysicalMemory(1024)
        mem.write(100, 0xDEADBEEF, 4)
        assert mem.read(100, 4) == 0xDEADBEEF
        assert mem.read_byte(100) == 0xEF  # little-endian

    def test_partial_widths(self):
        mem = PhysicalMemory(1024)
        mem.write(0, 0x1234, 2)
        assert mem.read(0, 2) == 0x1234
        assert mem.read(0, 4) == 0x1234

    def test_out_of_range_raises(self):
        mem = PhysicalMemory(16)
        with pytest.raises(MemoryError780):
            mem.read(16, 1)
        with pytest.raises(MemoryError780):
            mem.write(14, 0, 4)

    def test_load_image(self):
        mem = PhysicalMemory(64)
        mem.load_image(8, b"\x01\x02\x03")
        assert mem.read_block(8, 3) == b"\x01\x02\x03"


class TestSBI:
    def test_idle_read_latency(self):
        sbi = SBI(read_cycles=6, write_cycles=6)
        assert sbi.read_transaction(100) == 106

    def test_serialisation(self):
        sbi = SBI(read_cycles=6, write_cycles=6)
        first = sbi.read_transaction(100)
        second = sbi.read_transaction(101)  # issued while busy
        assert second == first + 6

    def test_idle_gap_not_charged(self):
        sbi = SBI(read_cycles=6, write_cycles=6)
        sbi.read_transaction(0)
        assert sbi.read_transaction(50) == 56


class TestWriteBuffer:
    def test_first_write_no_stall(self):
        sbi = SBI(6, 6)
        wb = WriteBuffer(sbi, depth=1)
        assert wb.issue(10) == 0

    def test_back_to_back_write_stalls(self):
        sbi = SBI(6, 6)
        wb = WriteBuffer(sbi, depth=1)
        wb.issue(10)             # drains at 16
        stall = wb.issue(12)
        assert stall == 4        # waits until cycle 16

    def test_write_after_drain_no_stall(self):
        sbi = SBI(6, 6)
        wb = WriteBuffer(sbi, depth=1)
        wb.issue(10)
        assert wb.issue(20) == 0

    def test_six_cycle_spacing_avoids_stall(self):
        # The paper notes character-string microcode writes only every
        # sixth cycle precisely to avoid write stalls.
        sbi = SBI(6, 6)
        wb = WriteBuffer(sbi, depth=1)
        now = 0
        for _ in range(10):
            assert wb.issue(now) == 0
            now += 6

    def test_stats(self):
        sbi = SBI(6, 6)
        wb = WriteBuffer(sbi, depth=1)
        wb.issue(0)
        wb.issue(1)
        assert wb.writes == 2
        assert wb.stall_cycles == 5


class TestMemorySubsystem:
    def make(self):
        return MemorySubsystem(VAX780)

    def test_read_hit_after_miss(self):
        mem = self.make()
        mem.debug_write(0x1000, 42, 4)
        miss = mem.read_data(0x1000, 4, now=0)
        assert miss.missed and miss.stall_cycles == 6
        assert miss.value == 42
        hit = mem.read_data(0x1000, 4, now=10)
        assert not hit.missed and hit.stall_cycles == 0

    def test_unaligned_read_two_refs(self):
        mem = self.make()
        result = mem.read_data(0x1002, 4, now=0)
        assert result.physical_refs == 2
        assert mem.unaligned_reads == 1

    def test_aligned_read_one_ref(self):
        mem = self.make()
        result = mem.read_data(0x1000, 4, now=0)
        assert result.physical_refs == 1

    def test_write_through_updates_memory(self):
        mem = self.make()
        mem.write_data(0x2000, 0xABCD, 2, now=0)
        assert mem.debug_read(0x2000, 2) == 0xABCD

    def test_write_stall_on_back_to_back(self):
        mem = self.make()
        first = mem.write_data(0x2000, 1, 4, now=0)
        second = mem.write_data(0x2004, 2, 4, now=1)
        assert first.stall_cycles == 0
        assert second.stall_cycles == 5

    def test_ifetch_hit_ready_next_cycle(self):
        mem = self.make()
        mem.ifetch(0x3000, now=0)          # miss, fills block
        assert mem.ifetch(0x3004, now=10) == 11  # same block: hit

    def test_ifetch_miss_ready_after_sbi(self):
        mem = self.make()
        assert mem.ifetch(0x3000, now=0) == 6

    def test_read_behind_ifetch_miss_queues(self):
        mem = self.make()
        mem.ifetch(0x3000, now=0)              # SBI busy until 6
        result = mem.read_data(0x5000, 4, now=1)
        assert result.stall_cycles == 11       # 6 queue + 6 service - 1

    def test_reset_stats(self):
        mem = self.make()
        mem.read_data(0x0, 4, now=0)
        mem.write_data(0x2, 1, 4, now=0)
        mem.reset_stats()
        assert mem.cache.stats.read_misses["d"] == 0
        assert mem.unaligned_writes == 0
