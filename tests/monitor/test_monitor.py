"""Tests for the µPC histogram board and its Unibus interface."""

from hypothesis import given, strategies as st

from repro.monitor.histogram import Histogram, HistogramBoard
from repro.monitor.unibus import (CSR_CLEAR, CSR_RUN, CSR_SELECT_STALL,
                                  UnibusHistogramInterface)


class TestBoard:
    def test_counts_accumulate(self):
        board = HistogramBoard(size=8)
        board.count(3)
        board.count(3, 2)
        board.count_stall(3, 5)
        snap = board.snapshot()
        assert snap.executions(3) == 3
        assert snap.stall_cycles(3) == 5

    def test_gating(self):
        board = HistogramBoard(size=8)
        board.enabled = False
        board.count(1)
        board.count_stall(1, 4)
        assert board.snapshot().total_cycles() == 0

    def test_clear(self):
        board = HistogramBoard(size=8)
        board.count(0, 10)
        board.clear()
        assert board.snapshot().total_cycles() == 0

    def test_snapshot_is_independent(self):
        board = HistogramBoard(size=8)
        board.count(0)
        snap = board.snapshot()
        board.count(0)
        assert snap.executions(0) == 1

    def test_passive_counting(self):
        # Counting must be free: no time model, no side effects beyond
        # the counters (the board is "totally passive", §2.2).
        board = HistogramBoard(size=4)
        for _ in range(1000):
            board.count(2)
        assert board.snapshot().executions(2) == 1000


class TestHistogramArithmetic:
    def test_addition_is_composite(self):
        a = Histogram([1, 2], [0, 1])
        b = Histogram([3, 4], [5, 6])
        c = a + b
        assert list(c.nonstalled) == [4, 6]
        assert list(c.stalled) == [5, 7]

    def test_size_mismatch_rejected(self):
        a = Histogram([1], [0])
        b = Histogram([1, 2], [0, 0])
        try:
            a + b
        except ValueError:
            return
        raise AssertionError("expected ValueError")

    @given(st.lists(st.integers(0, 1000), min_size=4, max_size=4),
           st.lists(st.integers(0, 1000), min_size=4, max_size=4))
    def test_total_cycles_additive(self, ns, stall):
        a = Histogram(ns, stall)
        b = Histogram(stall, ns)
        assert (a + b).total_cycles() == \
            a.total_cycles() + b.total_cycles()


class TestUnibusInterface:
    def test_run_bit_gates_board(self):
        board = HistogramBoard(size=8)
        bus = UnibusHistogramInterface(board)
        bus.write_csr(0)
        assert not board.enabled
        bus.write_csr(CSR_RUN)
        assert board.enabled
        assert bus.read_csr() & CSR_RUN

    def test_clear_command(self):
        board = HistogramBoard(size=8)
        board.count(2, 9)
        bus = UnibusHistogramInterface(board)
        bus.write_csr(CSR_CLEAR | CSR_RUN)
        assert board.snapshot().total_cycles() == 0
        assert board.enabled  # RUN survived the clear pulse

    def test_bucket_readout(self):
        board = HistogramBoard(size=8)
        board.count(5, 7)
        board.count_stall(5, 3)
        bus = UnibusHistogramInterface(board)
        bus.write_csr(CSR_RUN)
        bus.write_address(5)
        assert bus.read_data() == 7
        bus.write_csr(CSR_RUN | CSR_SELECT_STALL)
        assert bus.read_data() == 3

    def test_address_bounds_checked(self):
        bus = UnibusHistogramInterface(HistogramBoard(size=8))
        try:
            bus.write_address(8)
        except ValueError:
            return
        raise AssertionError("expected ValueError")

    def test_block_readout(self):
        board = HistogramBoard(size=4)
        board.count(1, 2)
        board.count_stall(3, 4)
        bus = UnibusHistogramInterface(board)
        assert bus.read_all() == [0, 2, 0, 0]
        assert bus.read_all(stalled=True) == [0, 0, 0, 4]
