"""Measurement session tests."""

import pytest

from repro.analysis import Reduction
from repro.monitor.session import (COUNTER_LIMIT, CounterSaturation,
                                   MeasurementSession)
from repro.monitor.unibus import (CSR_CLEAR, CSR_RUN, CSR_SELECT_STALL,
                                  UnibusHistogramInterface)
from tests.helpers import boot


class TestMeasurementSession:
    def test_start_stop_captures_run(self):
        machine = boot("""
            movl #10, r0
        loop:
            addl2 #1, r1
            sobgtr r0, loop
            halt
        """)
        session = MeasurementSession(machine, name="unit")
        session.start()
        machine.run(1000)
        measurement = session.stop()
        assert measurement.name == "unit"
        red = Reduction(measurement.histogram)
        assert red.instructions == machine.tracer.instructions
        assert red.total_cycles() == measurement.cycles

    def test_start_clears_previous_counts(self):
        machine = boot("nop\nnop\nhalt")
        machine.run(10)
        session = MeasurementSession(machine)
        session.start()
        measurement = session.stop()
        assert measurement.histogram.total_cycles() == 0

    def test_stop_without_start_raises(self):
        machine = boot("halt")
        session = MeasurementSession(machine)
        with pytest.raises(RuntimeError):
            session.stop()

    def test_stop_without_start_names_the_session(self):
        machine = boot("halt")
        session = MeasurementSession(machine, name="orphan")
        with pytest.raises(RuntimeError, match="'orphan' was not started"):
            session.stop()

    def test_stop_twice_raises(self):
        machine = boot("nop\nhalt")
        session = MeasurementSession(machine)
        session.start()
        machine.run(2)
        session.stop()
        with pytest.raises(RuntimeError, match="was not started"):
            session.stop()

    def test_counter_saturation_nonstalled(self):
        machine = boot("nop\nhalt")
        session = MeasurementSession(machine)
        session.start()
        machine.run(1)
        machine.board.nonstalled[0] = COUNTER_LIMIT
        with pytest.raises(CounterSaturation):
            session.stop()

    def test_counter_saturation_stalled(self):
        machine = boot("nop\nhalt")
        session = MeasurementSession(machine)
        session.start()
        machine.run(1)
        machine.board.stalled[3] = COUNTER_LIMIT + 7
        with pytest.raises(CounterSaturation):
            session.stop()

    def test_saturated_session_still_closes_gate(self):
        machine = boot("nop\nhalt")
        session = MeasurementSession(machine)
        session.start()
        machine.run(1)
        machine.board.nonstalled[0] = COUNTER_LIMIT
        with pytest.raises(CounterSaturation):
            session.stop()
        assert not machine.board.enabled

    def test_csr_lifecycle(self):
        machine = boot("""
            movl #5, r0
        loop:
            sobgtr r0, loop
            halt
        """)
        session = MeasurementSession(machine)
        iface = session.interface
        iface.write_csr(0)              # close the power-up gate
        assert not iface.read_csr() & CSR_RUN
        session.start()
        # RUN reads back set; CLEAR is self-clearing, never latched.
        assert iface.read_csr() & CSR_RUN
        assert not iface.read_csr() & CSR_CLEAR
        machine.run(20)
        measurement = session.stop()
        assert not iface.read_csr() & CSR_RUN
        assert measurement.histogram.total_cycles() > 0
        # With the gate closed, further execution counts nothing.
        frozen = list(machine.board.nonstalled)
        machine.run(100)
        assert list(machine.board.nonstalled) == frozen

    def test_csr_clear_zeroes_both_planes(self):
        machine = boot("nop\nnop\nhalt")
        machine.board.enabled = True
        machine.run(2)
        iface = UnibusHistogramInterface(machine.board)
        assert sum(iface.read_all(stalled=False)) > 0
        iface.write_csr(CSR_CLEAR)
        assert sum(iface.read_all(stalled=False)) == 0
        assert sum(iface.read_all(stalled=True)) == 0

    def test_csr_plane_select_readout(self):
        machine = boot("nop\nhalt")
        machine.board.enabled = True
        machine.run(1)
        machine.board.stalled[5] = 99
        iface = UnibusHistogramInterface(machine.board)
        iface.write_address(5)
        nonstalled_view = iface.read_data()
        iface.write_csr(CSR_SELECT_STALL)
        assert iface.read_data() == 99
        assert nonstalled_view == machine.board.nonstalled[5]

    def test_context_manager(self):
        machine = boot("""
            movl #3, r0
        loop:
            sobgtr r0, loop
            halt
        """)
        with MeasurementSession(machine, name="ctx") as session:
            machine.run(100)
        assert session.result.histogram.total_cycles() > 0

    def test_gate_closed_after_stop(self):
        machine = boot("nop\nhalt")
        session = MeasurementSession(machine)
        session.start()
        machine.run(5)
        session.stop()
        assert not machine.board.enabled

    def test_two_sessions_independent(self):
        machine = boot("""
            movl #4, r0
        loop:
            sobgtr r0, loop
            nop
            nop
            halt
        """)
        first = MeasurementSession(machine)
        first.start()
        machine.run(3)
        a = first.stop()
        second = MeasurementSession(machine)
        second.start()
        machine.run(100)
        b = second.stop()
        assert b.histogram.total_cycles() > 0
        assert a.histogram.total_cycles() + b.histogram.total_cycles() \
            == machine.cycles
