"""Measurement session tests."""

import pytest

from repro.analysis import Reduction
from repro.monitor.session import MeasurementSession
from tests.helpers import boot


class TestMeasurementSession:
    def test_start_stop_captures_run(self):
        machine = boot("""
            movl #10, r0
        loop:
            addl2 #1, r1
            sobgtr r0, loop
            halt
        """)
        session = MeasurementSession(machine, name="unit")
        session.start()
        machine.run(1000)
        measurement = session.stop()
        assert measurement.name == "unit"
        red = Reduction(measurement.histogram)
        assert red.instructions == machine.tracer.instructions
        assert red.total_cycles() == measurement.cycles

    def test_start_clears_previous_counts(self):
        machine = boot("nop\nnop\nhalt")
        machine.run(10)
        session = MeasurementSession(machine)
        session.start()
        measurement = session.stop()
        assert measurement.histogram.total_cycles() == 0

    def test_stop_without_start_raises(self):
        machine = boot("halt")
        session = MeasurementSession(machine)
        with pytest.raises(RuntimeError):
            session.stop()

    def test_context_manager(self):
        machine = boot("""
            movl #3, r0
        loop:
            sobgtr r0, loop
            halt
        """)
        with MeasurementSession(machine, name="ctx") as session:
            machine.run(100)
        assert session.result.histogram.total_cycles() > 0

    def test_gate_closed_after_stop(self):
        machine = boot("nop\nhalt")
        session = MeasurementSession(machine)
        session.start()
        machine.run(5)
        session.stop()
        assert not machine.board.enabled

    def test_two_sessions_independent(self):
        machine = boot("""
            movl #4, r0
        loop:
            sobgtr r0, loop
            nop
            nop
            halt
        """)
        first = MeasurementSession(machine)
        first.start()
        machine.run(3)
        a = first.stop()
        second = MeasurementSession(machine)
        second.start()
        machine.run(100)
        b = second.stop()
        assert b.histogram.total_cycles() > 0
        assert a.histogram.total_cycles() + b.histogram.total_cycles() \
            == machine.cycles
