"""Event tracer, heartbeat, and progress sampler unit tests."""

import json

import pytest

from repro.obs import Observation
from repro.obs.events import EventTracer, Heartbeat, ProgressSampler
from repro.obs.metrics import scoped_registry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestEventTracer:
    def test_jsonl_stream_is_valid_and_ordered(self, tmp_path):
        path = tmp_path / "events.jsonl"
        clock = FakeClock()
        tracer = EventTracer(path=path, clock=clock)
        tracer.emit("first", detail=1)
        clock.advance(0.5)
        tracer.emit("second")
        clock.advance(0.25)
        tracer.emit("third", nested={"a": [1, 2]})
        tracer.close()

        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["first", "second",
                                                "third"]
        stamps = [r["ts"] for r in records]
        assert stamps == sorted(stamps)
        assert records[0]["detail"] == 1
        assert records[2]["nested"] == {"a": [1, 2]}

    def test_buffer_mirrors_stream(self):
        tracer = EventTracer()
        tracer.emit("only")
        assert tracer.events[0]["event"] == "only"
        tracer.close()  # no path: close is a no-op

    def test_elapsed_tracks_clock(self):
        clock = FakeClock(100.0)
        tracer = EventTracer(clock=clock)
        clock.advance(2.5)
        assert tracer.elapsed == pytest.approx(2.5)


class TestHeartbeat:
    def _observation(self, clock):
        return Observation(label="hb", clock=clock)

    def test_maybe_beat_respects_interval(self):
        clock = FakeClock()
        lines = []
        with scoped_registry():
            observation = self._observation(clock)
            hb = Heartbeat(10.0, observation, write=lines.append,
                           clock=clock)
            assert hb.maybe_beat() is False         # t=0: too soon
            clock.advance(9.9)
            assert hb.maybe_beat() is False         # still inside
            clock.advance(0.2)
            assert hb.maybe_beat() is True          # past the interval
            assert hb.maybe_beat() is False          # interval reset
            clock.advance(10.1)
            assert hb.maybe_beat() is True
        assert hb.beats == 2
        assert len(lines) == 2

    def test_beat_reads_registry_and_emits_event(self):
        clock = FakeClock()
        lines = []
        with scoped_registry():
            observation = self._observation(clock)
            observation.registry.counter("workloads.runs").inc(3)
            hb = Heartbeat(5.0, observation, write=lines.append,
                           clock=clock)
            clock.advance(1.5)
            line = hb.beat()
        assert "workloads=3" in line
        assert "[obs +1.5s hb]" in line
        beats = [e for e in observation.tracer.events
                 if e["event"] == "heartbeat"]
        assert len(beats) == 1

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Heartbeat(0, None)


class _FakeTracer:
    instructions = 0


class _FakeMachine:
    def __init__(self):
        self.boundary_hook = None
        self.tracer = _FakeTracer()
        self.cycles = 0

    def run(self, boundaries):
        for _ in range(boundaries):
            self.tracer.instructions += 1
            self.cycles += 10
            if self.boundary_hook is not None:
                self.boundary_hook(self)


class TestProgressSampler:
    def test_hook_chains_and_restores(self):
        machine = _FakeMachine()
        seen = []
        machine.boundary_hook = lambda m: seen.append(
            m.tracer.instructions)
        with scoped_registry():
            observation = Observation(label="s")
            sampler = ProgressSampler(machine, observation, "wl",
                                      interval=256)
            sampler.install()
            hook_while_installed = machine.boundary_hook
            machine.run(300)
            sampler.uninstall()
            machine.run(1)
        assert hook_while_installed is not machine.boundary_hook
        assert len(seen) == 301       # previous hook always ran
        assert sampler.samples >= 1

    def test_samples_emit_progress_and_gauges(self):
        machine = _FakeMachine()
        with scoped_registry() as reg:
            observation = Observation(label="s")
            with ProgressSampler(machine, observation, "wl",
                                 interval=256):
                machine.run(256)
        progress = [e for e in observation.tracer.events
                    if e["event"] == "progress"]
        assert progress and progress[-1]["instructions"] == 256
        assert progress[-1]["cycles"] == 2560
        snap = reg.snapshot()
        assert snap["run.wl.instructions"]["value"] == 256
        assert snap["run.wl.cycles"]["value"] == 2560

    def test_interval_never_drops_below_floor(self):
        sampler = ProgressSampler(_FakeMachine(), Observation(label="s"),
                                  "wl", interval=1)
        assert sampler.interval == 256
