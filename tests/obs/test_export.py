"""Exporters: Chrome trace validity, flamegraph accounting, heartbeat."""

import json

from repro.obs.export import chrome_trace, flamegraph, heartbeat_line


class TestChromeTrace:
    def _events(self):
        return [
            {"ts": 0.0, "event": "observation_opened", "label": "t"},
            {"ts": 0.1, "event": "workload_started", "workload": "a"},
            {"ts": 0.4, "event": "workload_finished", "workload": "a",
             "cycles": 123},
            {"ts": 0.5, "event": "task_finished", "index": 0,
             "label": "job", "worker": 4242, "seconds": 0.3},
            {"ts": 0.6, "event": "task_finished", "index": 1,
             "label": "job", "worker": 4243, "seconds": 0.2},
            {"ts": 0.7, "event": "observation_closed", "label": "t"},
        ]

    def test_trace_is_valid_json_with_monotonic_ts(self):
        doc = chrome_trace(self._events())
        json.dumps(doc)                       # serialisable as-is
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert all(e["ph"] in ("X", "i", "M") for e in events)
        stamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert stamps == sorted(stamps)

    def test_started_finished_becomes_one_slice(self):
        events = [e for e in chrome_trace(self._events())["traceEvents"]
                  if e["ph"] == "X" and e["cat"] == "workload"]
        assert len(events) == 1
        span = events[0]
        assert span["name"] == "a"
        assert span["ts"] == 100_000          # 0.1 s in microseconds
        assert span["dur"] == 300_000
        assert span["args"]["cycles"] == 123

    def test_pool_tasks_get_worker_lanes(self):
        doc = chrome_trace(self._events())
        lanes = {e["tid"] for e in doc["traceEvents"]
                 if e.get("cat") == "pool"}
        assert len(lanes) == 2
        assert all(tid >= 100 for tid in lanes)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"main", "worker-4242", "worker-4243"} <= names

    def test_unclosed_span_is_closed_at_last_ts(self):
        events = [
            {"ts": 0.0, "event": "workload_started", "workload": "w"},
            {"ts": 2.0, "event": "heartbeat", "line": "x"},
        ]
        spans = [e for e in chrome_trace(events)["traceEvents"]
                 if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["args"] == {"unclosed": True}
        assert spans[0]["dur"] == 2_000_000

    def test_empty_stream(self):
        doc = chrome_trace([])
        assert all(e["ph"] == "M" for e in doc["traceEvents"])


class TestFlamegraph:
    def test_counts_sum_to_classified_cycles(self):
        from repro.analysis.reduction import Reduction
        from repro.workloads.engine import run_workload
        from repro.workloads.profiles import STANDARD_PROFILES

        measurement = run_workload(STANDARD_PROFILES[0], 1_500)
        lines = flamegraph(measurement)
        assert lines
        total = 0
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            total += int(count)
            frames = stack.split(";")
            assert frames[0] == measurement.name
            assert 3 <= len(frames) <= 4
        assert total == Reduction(measurement.histogram).total_cycles()

    def test_stack_roots_cover_the_stages(self):
        from repro.workloads.engine import run_workload
        from repro.workloads.profiles import STANDARD_PROFILES

        measurement = run_workload(STANDARD_PROFILES[0], 1_500)
        stages = {line.split(";")[1] for line in flamegraph(measurement)}
        assert {"decode", "specifier", "execute"} <= stages


class TestHeartbeatLine:
    def test_warming_up_when_nothing_moves(self):
        assert heartbeat_line({}, 0.3, label="x") \
            == "[obs +0.3s x] warming up"

    def test_counters_and_gauges_render(self):
        snapshot = {
            "workloads.runs": {"kind": "counter", "value": 2},
            "workloads.cycles": {"kind": "counter", "value": 12345},
            "run.a.instructions": {"kind": "gauge", "value": 700,
                                   "agg": "max"},
            "run.b.instructions": {"kind": "gauge", "value": 300,
                                   "agg": "max"},
        }
        line = heartbeat_line(snapshot, 12.0, label="run")
        assert "workloads=2" in line
        assert "cycles=12,345" in line
        assert "instr~1,000" in line

    def test_zero_counters_are_quiet(self):
        snapshot = {"validate.divergences": {"kind": "counter",
                                             "value": 0}}
        assert "DIVERGED" not in heartbeat_line(snapshot, 1.0)
