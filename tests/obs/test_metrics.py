"""The metrics registry: algebra, scoping, and pool-worker merge."""

import itertools

import pytest

from repro.obs import metrics
from repro.obs.metrics import (MetricsError, MetricsRegistry,
                               merge_snapshots, scoped_registry)


def _bump_worker(task):
    """Top-level so it pickles into pool workers."""
    n, seconds = task
    metrics.counter("test.bump").inc(n)
    metrics.gauge("test.peak").set(n)
    metrics.timer("test.took").observe(seconds)
    return n * 10


class TestMetricBasics:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.snapshot()["c"] == {"kind": "counter", "value": 5}

    def test_gauge_set_and_agg(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(7)
        snap = reg.snapshot()["g"]
        assert snap == {"kind": "gauge", "value": 7, "agg": "max"}

    def test_gauge_rejects_unknown_agg(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.gauge("g", agg="last")

    def test_gauge_agg_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.gauge("g", agg="sum")
        with pytest.raises(MetricsError):
            reg.gauge("g", agg="max")

    def test_timer_statistics(self):
        reg = MetricsRegistry()
        reg.timer("t").observe(0.5)
        reg.timer("t").observe(1.5)
        snap = reg.snapshot()["t"]
        assert snap["count"] == 2
        assert snap["total"] == pytest.approx(2.0)
        assert snap["min"] == pytest.approx(0.5)
        assert snap["max"] == pytest.approx(1.5)

    def test_timer_time_context(self):
        reg = MetricsRegistry()
        with reg.timer("t").time():
            pass
        assert reg.snapshot()["t"]["count"] == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("name")
        with pytest.raises(MetricsError):
            reg.gauge("name")
        with pytest.raises(MetricsError):
            reg.timer("name")

    def test_snapshot_is_name_sorted_and_plain(self):
        import json

        reg = MetricsRegistry()
        reg.counter("zz").inc()
        reg.counter("aa").inc()
        snap = reg.snapshot()
        assert list(snap) == ["aa", "zz"]
        json.dumps(snap)  # must be JSON-able as-is


def _snapshots():
    a = MetricsRegistry()
    a.counter("c").inc(3)
    a.gauge("peak").set(10)
    a.gauge("load", agg="sum").set(2)
    a.timer("t").observe(1.0)
    b = MetricsRegistry()
    b.counter("c").inc(4)
    b.gauge("peak").set(25)
    b.gauge("load", agg="sum").set(5)
    b.timer("t").observe(0.25)
    c = MetricsRegistry()
    c.counter("c").inc(5)
    c.counter("only_c").inc(1)
    c.timer("t").observe(2.0)
    return a.snapshot(), b.snapshot(), c.snapshot()


class TestMergeAlgebra:
    def test_merge_rules(self):
        a, b, _ = _snapshots()
        merged = merge_snapshots(a, b)
        assert merged["c"]["value"] == 7
        assert merged["peak"]["value"] == 25          # max
        assert merged["load"]["value"] == 7           # sum
        assert merged["t"]["count"] == 2
        assert merged["t"]["total"] == pytest.approx(1.25)
        assert merged["t"]["min"] == pytest.approx(0.25)
        assert merged["t"]["max"] == pytest.approx(1.0)

    def test_merge_commutative_and_associative(self):
        a, b, c = _snapshots()
        reference = merge_snapshots(a, b, c)
        for order in itertools.permutations((a, b, c)):
            assert merge_snapshots(*order) == reference
        nested = merge_snapshots(a, merge_snapshots(b, c))
        assert nested == reference

    def test_merge_identity(self):
        a, _, _ = _snapshots()
        assert merge_snapshots(a, MetricsRegistry().snapshot()) == a

    def test_merge_unknown_kind_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.merge({"x": {"kind": "histogram", "value": 1}})


class TestScopedRegistry:
    def test_scope_captures_delta_and_restores(self):
        outer = metrics.registry()
        with scoped_registry() as scoped:
            assert metrics.registry() is scoped
            metrics.counter("scoped.only").inc(2)
        assert metrics.registry() is outer
        assert scoped.snapshot()["scoped.only"]["value"] == 2
        assert "scoped.only" not in outer.snapshot()

    def test_scopes_nest(self):
        with scoped_registry() as first:
            metrics.counter("depth").inc()
            with scoped_registry() as second:
                metrics.counter("depth").inc(10)
            assert metrics.registry() is first
        assert first.snapshot()["depth"]["value"] == 1
        assert second.snapshot()["depth"]["value"] == 10

    def test_scope_restores_on_error(self):
        outer = metrics.registry()
        with pytest.raises(RuntimeError):
            with scoped_registry():
                raise RuntimeError("boom")
        assert metrics.registry() is outer


class TestPoolMerge:
    def test_run_tasks_merges_worker_metrics(self):
        from repro.workloads.parallel import run_tasks

        tasks = [(1, 0.01), (2, 0.02), (3, 0.03)]
        with scoped_registry() as reg:
            results = run_tasks(_bump_worker, tasks, jobs=2)
        assert results == [10, 20, 30]
        snap = reg.snapshot()
        assert snap["test.bump"]["value"] == 6
        assert snap["test.peak"]["value"] == 3        # max across workers
        assert snap["test.took"]["count"] == 3
        assert snap["parallel.tasks"]["value"] == 3

    def test_serial_path_counts_directly(self):
        from repro.workloads.parallel import run_tasks

        with scoped_registry() as reg:
            results = run_tasks(_bump_worker, [(5, 0.01)], jobs=1)
        assert results == [50]
        assert reg.snapshot()["test.bump"]["value"] == 5

    def test_jobs_agnostic_totals(self):
        """The merged counts match a serial run bit-for-bit."""
        from repro.workloads.parallel import run_tasks

        tasks = [(i, 0.001 * i) for i in range(1, 5)]
        with scoped_registry() as serial_reg:
            serial = run_tasks(_bump_worker, tasks, jobs=1)
        with scoped_registry() as pooled_reg:
            pooled = run_tasks(_bump_worker, tasks, jobs=2)
        assert serial == pooled
        a, b = serial_reg.snapshot(), pooled_reg.snapshot()
        assert a["test.bump"] == b["test.bump"]
        assert a["test.peak"] == b["test.peak"]
        assert a["test.took"]["count"] == b["test.took"]["count"]
