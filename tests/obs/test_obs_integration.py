"""End-to-end observation: artifacts, passivity, the CLI contract.

The load-bearing contract: observing a run must not change a single
simulated count.  The tests here run the composite with and without an
active observation (memo cache cleared in between) and require
bit-identical measurements.
"""

import json

from repro import obs
from repro.cli import main
from repro.obs.metrics import scoped_registry
from repro.workloads import engine

#: A budget no other test module uses, so the cache interplay is ours.
BUDGET = 1_300


def _composite_fingerprint(measurement):
    return (measurement.cycles,
            tuple(measurement.histogram.nonstalled),
            tuple(measurement.histogram.stalled))


class TestPassivity:
    def test_observed_composite_is_bit_identical(self, tmp_path):
        engine.clear_cache()
        try:
            with scoped_registry():
                with obs.observe(tmp_path / "out", label="identity"):
                    observed = _composite_fingerprint(
                        engine.standard_composite(BUDGET))
            engine.clear_cache()
            with scoped_registry():
                plain = _composite_fingerprint(
                    engine.standard_composite(BUDGET))
        finally:
            engine.clear_cache()
        assert observed == plain


class TestArtifacts:
    def test_observe_writes_all_artifacts(self, tmp_path):
        out = tmp_path / "out"
        with scoped_registry():
            with obs.observe(out, label="artifacts") as observation:
                engine.run_workload(
                    engine.STANDARD_PROFILES[0], 1_500)
        assert set(observation.outputs) == {"events", "metrics",
                                            "trace", "flamegraph"}

        records = [json.loads(line) for line in
                   (out / "events.jsonl").read_text().splitlines()]
        names = [r["event"] for r in records]
        assert names[0] == "observation_opened"
        assert names[-1] == "observation_closed"
        assert "workload_started" in names
        assert "workload_finished" in names
        stamps = [r["ts"] for r in records]
        assert stamps == sorted(stamps)

        metrics_doc = json.loads((out / "metrics.json").read_text())
        assert metrics_doc["label"] == "artifacts"
        assert metrics_doc["metrics"]["workloads.runs"]["value"] == 1
        assert metrics_doc["metrics"]["workloads.cycles"]["value"] > 0

        trace = json.loads((out / "trace.json").read_text())
        stamps = [e["ts"] for e in trace["traceEvents"]
                  if e["ph"] != "M"]
        assert stamps == sorted(stamps)

        flame = (out / "flamegraph.collapsed").read_text().splitlines()
        assert flame and all(" " in line for line in flame)

    def test_memo_hits_are_counted_not_rerun(self, tmp_path):
        with scoped_registry():
            with obs.observe(tmp_path / "out",
                             label="memo") as observation:
                first = engine.run_workload(
                    engine.STANDARD_PROFILES[0], 1_500)
                again = engine.run_workload(
                    engine.STANDARD_PROFILES[0], 1_500)
        assert again is first
        snap = observation.registry.snapshot()
        assert snap["workloads.memo_hits"]["value"] >= 1

    def test_emit_is_noop_without_active_observation(self):
        assert obs.active() is None
        obs.emit("ignored", detail=1)  # must not raise


class TestCliObservability:
    def test_characterize_smoke_with_obs(self, tmp_path, capsys):
        out = tmp_path / "obs"
        assert main(["characterize", "--smoke", "--table", "8",
                     "--obs", str(out), "--heartbeat", "30"]) == 0
        captured = capsys.readouterr()
        assert "TABLE 8" in captured.out
        for name in ("events.jsonl", "metrics.json", "trace.json",
                     "flamegraph.collapsed"):
            assert (out / name).exists(), name
        assert "obs: wrote" in captured.err

        # The flamegraph is the smoke composite's exact accounting.
        from repro.analysis.reduction import Reduction

        composite = engine.standard_composite(engine.SMOKE_INSTRUCTIONS)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in
                    (out / "flamegraph.collapsed").read_text()
                    .splitlines())
        assert total == Reduction(composite.histogram).total_cycles()

    def test_validate_smoke_with_obs_sees_fuzz_metrics(self, tmp_path,
                                                       capsys):
        out = tmp_path / "obs"
        assert main(["validate", "--smoke", "--fuzz", "1",
                     "--fuzz-instructions", "120",
                     "--obs", str(out)]) == 0
        doc = json.loads((out / "metrics.json").read_text())
        assert doc["metrics"]["validate.fuzz_cases"]["value"] == 1
        assert "validate.divergences" not in doc["metrics"] or \
            doc["metrics"]["validate.divergences"]["value"] == 0
        events = [json.loads(line) for line in
                  (out / "events.jsonl").read_text().splitlines()]
        assert any(e["event"] == "fuzz_case" for e in events)
        assert any(e["event"] == "run_started"
                   and e["command"] == "validate" for e in events)

    def test_explore_smoke_with_obs_counts_store_traffic(
            self, tmp_path, capsys, smoke_sweep, smoke_store):
        out = tmp_path / "obs"
        assert main(["explore", "--smoke", "--jobs", "1",
                     "--store", str(smoke_store.root),
                     "--obs", str(out)]) == 0
        doc = json.loads((out / "metrics.json").read_text())
        # The session sweep is warm: every lookup hits, nothing runs.
        assert doc["metrics"]["explore.store.hits"]["value"] > 0
        assert "explore.simulations" not in doc["metrics"]
        events = [json.loads(line) for line in
                  (out / "events.jsonl").read_text().splitlines()]
        sweeps = [e for e in events if e["event"] == "sweep_finished"]
        assert sweeps and sweeps[0]["simulated"] == 0
