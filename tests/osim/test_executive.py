"""Executive integration: boot, scheduling, syscalls, devices, gating."""

import pytest

from repro.arch.registers import USER
from repro.cpu.machine import VAX780
from repro.osim.executive import Executive
from repro.osim.process import BLOCKED, READY
from repro.workloads.profiles import MixProfile, TIMESHARING_RESEARCH


@pytest.fixture(scope="module")
def booted():
    """A booted executive that has run a short measurement window."""
    machine = VAX780()
    executive = Executive(machine, TIMESHARING_RESEARCH, seed=77)
    executive.boot()
    executive.run(16000)
    return machine, executive


class TestBootAndRun:
    def test_measured_window_reached(self, booted):
        machine, _ = booted
        assert machine.tracer.instructions >= 16000

    def test_user_mode_reached(self, booted):
        machine, executive = booted
        # At least one real process got dispatched.
        assert executive.scheduler.current is not None

    def test_kernel_and_user_instructions_mix(self, booted):
        machine, _ = booted
        # System services / REI executed (kernel activity measured).
        assert machine.tracer.opcode_counts["REI"] > 0

    def test_context_switches_happened(self, booted):
        machine, _ = booted
        assert machine.tracer.context_switches > 0
        assert machine.tracer.opcode_counts["LDPCTX"] == \
            machine.tracer.context_switches

    def test_interrupts_delivered(self, booted):
        machine, _ = booted
        assert machine.tracer.interrupts > 0

    def test_software_interrupts_requested(self, booted):
        machine, _ = booted
        assert machine.tracer.software_interrupt_requests > 0

    def test_no_page_faults_in_steady_state(self, booted):
        machine, _ = booted
        assert machine.tracer.page_faults == 0

    def test_tb_flushed_on_switch(self, booted):
        machine, _ = booted
        assert machine.tb.stats.flushes >= \
            machine.tracer.context_switches

    def test_histogram_tracks_tracer(self, booted):
        machine, _ = booted
        from repro.analysis import Reduction
        red = Reduction(machine.board.snapshot())
        # Gating applies to both instruments identically, so the counts
        # agree exactly.
        assert red.instructions == machine.tracer.instructions


class TestScheduler:
    def make_executive(self, **overrides):
        profile = MixProfile(name="t", description="t", processes=2,
                             **overrides)
        machine = VAX780()
        return machine, Executive(machine, profile, seed=5)

    def test_next_pcb_round_robin(self):
        machine, executive = self.make_executive()
        sched = executive.scheduler
        first = sched.next_pcb()
        sched.current.state = READY
        second = sched.next_pcb()
        assert first != second

    def test_block_and_wake(self):
        machine, executive = self.make_executive()
        sched = executive.scheduler
        sched.next_pcb()
        victim = sched.current
        sched.block_current(0)
        assert victim.state == BLOCKED
        # Wake time in the future: not ready yet.
        sched.next_pcb()
        assert victim.state == BLOCKED
        machine.ebox.now = victim.wake_cycle + 1
        sched.next_pcb()
        assert victim.state in (READY, "running")

    def test_null_selected_when_all_blocked(self):
        machine, executive = self.make_executive()
        sched = executive.scheduler
        for process in sched.processes:
            process.state = BLOCKED
            process.wake_cycle = 10 ** 12
        pcb = sched.next_pcb()
        assert pcb == executive.null_process.pcb_base
        # Null gates the instruments off (paper §2.2).
        assert not machine.board.enabled
        assert not machine.tracer.enabled

    def test_gate_reopens_for_real_process(self):
        machine, executive = self.make_executive()
        sched = executive.scheduler
        for process in sched.processes:
            process.state = BLOCKED
            process.wake_cycle = 0
        sched.next_pcb()
        assert machine.board.enabled

    def test_quantum_expiry(self):
        machine, executive = self.make_executive(quantum_ticks=2)
        sched = executive.scheduler
        sched.next_pcb()
        assert sched.quantum_expired() == 0
        assert sched.quantum_expired() == 1


class TestDevices:
    def test_clock_fires_periodically(self, booted):
        machine, executive = booted
        assert executive.clock.ticks > 0

    def test_terminal_characters_arrive(self, booted):
        machine, executive = booted
        assert executive.terminal.characters > 0

    def test_clock_period_roughly_respected(self, booted):
        machine, executive = booted
        expected = machine.cycles / executive.clock.period
        assert executive.clock.ticks <= expected + 2


class TestNullExclusion:
    def test_null_instructions_not_measured(self):
        profile = MixProfile(name="idle", description="idle", processes=1,
                             io_block_cycles=200000)
        machine = VAX780()
        executive = Executive(machine, profile, seed=9)
        executive.boot()
        executive.run(2000)
        # Force the only process into an I/O wait and request the
        # rescheduling software interrupt, exactly as svc_qio does.
        executive.scheduler.block_current(0)
        machine.sisr |= 1 << 3
        for _ in range(200):
            machine.step()
        assert executive.scheduler.current.is_null
        assert not machine.board.enabled
        measured_before = machine.board.snapshot().total_cycles()
        for _ in range(500):
            machine.step()  # Null spins, unmeasured
        assert machine.board.snapshot().total_cycles() == measured_before
        assert machine.cycles > measured_before
