"""The assumption registry, its probes, and the measurement shrinker."""

import pytest

from repro.refute import ASSUMPTIONS, ProbePoint, shrink_measurement
from repro.refute.assumptions import (mix_from_records,
                                      probe_capability,
                                      probe_conservation, record_cpi,
                                      simulate_point, violation)

POINT = ProbePoint(machine="vax780", instructions=300, seed=7,
                   workload="rte-educational")


class TestRegistry:
    def test_six_assumptions_with_unique_names(self):
        names = [a.name for a in ASSUMPTIONS]
        assert len(names) == 6
        assert len(set(names)) == 6

    def test_kinds_partition_the_probe_machinery(self):
        assert {a.kind for a in ASSUMPTIONS} == {
            "measurement", "analytical", "ubench", "differential"}

    def test_every_assumption_documents_its_bound(self):
        for assumption in ASSUMPTIONS:
            assert assumption.bound
            assert assumption.description


class TestViolationRecord:
    def test_numeric_delta_is_computed(self):
        item = violation("conservation-laws", POINT, "cycles", 105, 100)
        assert item["delta"] == 5
        assert item["label"] == POINT.label()

    def test_non_numeric_observations_carry_no_delta(self):
        item = violation("batch-scalar-identity", POINT, "error",
                         "boom", None)
        assert item["delta"] is None


class TestMeasurementProbes:
    @pytest.fixture(scope="class")
    def measurement(self):
        return simulate_point(POINT)

    def test_conservation_holds_on_a_clean_run(self, measurement):
        probe = probe_conservation(POINT, measurement)
        assert probe["ok"] and not probe["violations"]
        assert probe["checks"] > 0

    def test_capability_laws_use_the_effective_params(self, measurement):
        # The stock 780 has no overlapped decode, so the law applies
        # and holds; overriding the feature on waives it.
        probe = probe_capability(POINT, measurement)
        assert probe["ok"]
        assert probe["checks"] == 1  # overlapped-decodes only
        overridden = ProbePoint(
            machine="vax780", instructions=300, seed=7,
            workload="rte-educational",
            overrides=(("overlapped_decode", True),))
        waived = probe_capability(overridden,
                                  simulate_point(overridden))
        assert waived["checks"] == 0

    def test_uvax_feature_counters_stay_zero(self):
        point = ProbePoint(machine="uvax78032", instructions=300,
                           seed=7, workload="rte-educational")
        probe = probe_capability(point, simulate_point(point))
        assert probe["ok"]
        assert probe["checks"] == 3  # ib refs, ib stalls, decodes


class TestShrink:
    def test_planted_violation_shrinks_to_ten_or_fewer(self):
        point = ProbePoint(machine="vax780", instructions=64, seed=7,
                           workload="rte-educational")
        reproducer = shrink_measurement("conservation-laws", point,
                                        plant="stall-charge-dropped")
        assert reproducer["instructions"] <= 10
        assert reproducer["violations"]
        assert reproducer["kind"] == "budget-bisection"


class TestStoreBackedCalibration:
    def test_mix_from_records_matches_a_direct_calibration(self):
        from repro.explore.runner import run_sweep
        from repro.explore.space import Axis, SweepSpec
        from repro.machines import calibrate

        anchors = (200, 400, 600)
        spec = SweepSpec(name="refute-test", mode="ofat",
                         axes=(Axis("instructions", anchors),),
                         instructions=anchors[-1], seed=1984,
                         workloads=("rte-educational",),
                         machine="vax780")
        sweep = run_sweep(spec, store=None)
        records = {entry["point"].instructions:
                   entry["records"]["rte-educational"]
                   for entry in sweep.points}
        mix = mix_from_records("rte-educational", "vax780", anchors,
                               records)
        direct = calibrate("rte-educational", "vax780", anchors=anchors)
        assert mix.estimate(300).cpi == pytest.approx(
            direct.estimate(300).cpi)
        assert record_cpi(records[600]) == pytest.approx(
            direct.estimate(600).cpi, rel=0.05)
