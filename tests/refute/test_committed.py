"""The committed REFUTATIONS.json holds the acceptance verdicts.

Structure and verdicts only — the committed ``code`` hash is *not*
pinned against the live tree (any later source change would break the
suite until regeneration); ``repro refute --json REFUTATIONS.json``
regenerates the document byte-identically at the committed seed.
"""

import json
import pathlib

import pytest

from repro.refute import ASSUMPTIONS, PERTURBATIONS, REFUTATIONS_SCHEMA


@pytest.fixture(scope="module")
def doc():
    path = (pathlib.Path(__file__).resolve().parents[2]
            / "REFUTATIONS.json")
    assert path.exists(), "REFUTATIONS.json missing from the repo root"
    return json.loads(path.read_text())


class TestCommittedRefutations:
    def test_schema_and_provenance(self, doc):
        assert doc["schema"] == REFUTATIONS_SCHEMA
        assert doc["campaign"] == "standard"
        assert doc["seed"] == 1984
        assert doc["plant"] is None
        assert isinstance(doc["code"], str) and doc["code"]

    def test_every_assumption_was_probed_and_none_refuted(self, doc):
        rows = {row["name"]: row for row in doc["assumptions"]}
        assert set(rows) == {a.name for a in ASSUMPTIONS}
        for name, row in rows.items():
            assert row["probes"] > 0, name
            assert row["violations"] == 0, name
        assert doc["refutations"] == []

    def test_margins_stay_clear_of_every_bound(self, doc):
        assert doc["margins"], "campaign recorded no margins"
        for entry in doc["margins"]:
            assert entry["margin"] > 0, entry

    def test_all_planted_bugs_were_detected_and_shrunk(self, doc):
        planted = doc["planted"]
        assert {p["perturbation"] for p in planted} == set(PERTURBATIONS)
        for check in planted:
            assert check["detected"], check["perturbation"]
            assert set(check["expect"]) <= set(check["detected_by"])
            assert check["refutations"] > 0
            assert check["min_reproducer_instructions"] <= 10

    def test_the_overall_verdict_is_green(self, doc):
        assert doc["ok"] is True
