"""The planted perturbations: install/undo hygiene and real effect."""

import pytest

from repro.refute import (ASSUMPTIONS_BY_NAME, PERTURBATIONS,
                          perturbation, perturbation_names)


class TestRegistry:
    def test_names_are_stable_and_ordered(self):
        assert perturbation_names() == (
            "ib-take-extra-cycle", "batch-capture-extra-count",
            "stall-charge-dropped")

    def test_every_expectation_names_a_registered_assumption(self):
        for plant in PERTURBATIONS.values():
            assert plant.expect, plant.name
            for name in plant.expect:
                assert name in ASSUMPTIONS_BY_NAME, \
                    f"{plant.name} expects unknown assumption {name}"

    def test_none_is_the_noop_plant(self):
        with perturbation(None) as plant:
            assert plant is None

    def test_unknown_plant_raises_before_patching(self):
        from repro.cpu.ebox import EBox

        original = EBox.ib_take
        with pytest.raises(ValueError, match="unknown perturbation"):
            with perturbation("no-such-plant"):
                pass  # pragma: no cover
        assert EBox.ib_take is original


class TestInstallUndo:
    def test_patch_is_scoped_to_the_context(self):
        from repro.cpu.ebox import EBox

        original = EBox.ib_take
        with perturbation("ib-take-extra-cycle"):
            assert EBox.ib_take is not original
        assert EBox.ib_take is original

    def test_undo_runs_even_on_error(self):
        from repro.monitor.histogram import HistogramBoard

        original = HistogramBoard.count_stall
        with pytest.raises(RuntimeError):
            with perturbation("stall-charge-dropped"):
                raise RuntimeError("boom")
        assert HistogramBoard.count_stall is original


class TestEffect:
    """A plant changes simulated counts, and leaves no trace after."""

    def _cycles(self, plant=None):
        from repro.refute.assumptions import ProbePoint, simulate_point

        point = ProbePoint(machine="vax780", instructions=64, seed=7,
                           workload="rte-educational")
        return simulate_point(point, plant=plant).cycles

    def test_extra_cycle_plant_skews_the_fast_engine(self):
        clean = self._cycles()
        planted = self._cycles(plant="ib-take-extra-cycle")
        assert planted > clean

    def test_clean_rerun_after_a_plant_matches_the_original(self):
        clean = self._cycles()
        self._cycles(plant="stall-charge-dropped")
        assert self._cycles() == clean
