"""The campaign planner: clean runs, planted detection, determinism."""

import json

import pytest

from repro import api
from repro.refute import PERTURBATIONS, run_campaign
from repro.refute.planner import CAMPAIGNS, CampaignSpec
from repro.report.refute import refute_json

#: A deliberately small campaign so every planner path runs in test
#: time; the committed REFUTATIONS.json exercises the real ones.
TINY = CampaignSpec(
    name="test-tiny", workloads=("rte-educational",),
    machines=("vax780",), budgets=(450,), anchors=(200, 400, 600),
    variants=((),), refine=0, fuzz_cases=1, batch_cases=1,
    fuzz_budget=120, seed=7)


class TestCleanCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(TINY, store=None)

    def test_zero_refutations_on_the_unperturbed_simulator(self, result):
        assert result.ok
        assert result.refutations == []

    def test_every_assumption_is_probed(self, result):
        probed = {probe["assumption"] for probe in result.probes}
        assert probed == {
            "conservation-laws", "capability-invariants",
            "analytical-cpi-bound", "ubench-exactness",
            "fastpath-reference-identity", "batch-scalar-identity"}

    def test_summary_rolls_up_per_assumption(self, result):
        rows = result.assumptions_summary()
        assert len(rows) == 6
        assert all(row["violations"] == 0 for row in rows)
        analytical = next(r for r in rows
                          if r["name"] == "analytical-cpi-bound")
        assert 0.0 < analytical["worst_margin"] <= 1.0


class TestPlantedDetection:
    """Every registered plant must be caught by the assumptions that
    promise to see it, and shrunk to a <=10-instruction reproducer."""

    @pytest.mark.parametrize("plant", sorted(PERTURBATIONS))
    def test_plant_is_detected_and_shrunk(self, plant):
        result = run_campaign(TINY, store=None, plant=plant)
        flagged = {item["assumption"] for item in result.refutations}
        assert set(PERTURBATIONS[plant].expect) <= flagged, \
            f"{plant} missed by {PERTURBATIONS[plant].expect}"
        budgets = [item["reproducer"]["instructions"]
                   for item in result.refutations
                   if item["reproducer"] is not None
                   and "instructions" in item["reproducer"]]
        assert budgets and min(budgets) <= 10

    def test_unknown_plant_is_rejected_before_running(self):
        from repro.refute.planner import RefuteError

        with pytest.raises(RefuteError, match="unknown perturbation"):
            run_campaign(TINY, store=None, plant="no-such-plant")


class TestJobsDeterminism:
    """The whole document — probes, margins, shrunk reproducers — is
    byte-identical at any ``--jobs`` (the shrinker-determinism
    satellite: ordering comes from submission order, never workers)."""

    def _doc(self, jobs, plant=None):
        result = run_campaign(TINY, store=None, jobs=jobs, plant=plant)
        return json.dumps(result.to_json(), sort_keys=True)

    def test_clean_campaign_is_jobs_invariant(self):
        assert self._doc(jobs=1) == self._doc(jobs=2)

    def test_planted_campaign_is_jobs_invariant(self):
        plant = "ib-take-extra-cycle"
        assert self._doc(jobs=1, plant=plant) \
            == self._doc(jobs=2, plant=plant)


class TestFuzzJobsDeterminism:
    """validate's fuzzers share the guarantee at the API level."""

    def test_reference_fuzz_results_match_across_jobs(self):
        from repro.validate import fuzz

        serial = fuzz(3, seed=11, instructions=120, jobs=1)
        parallel = fuzz(3, seed=11, instructions=120, jobs=2)
        assert [r["label"] for r in serial] \
            == [r["label"] for r in parallel]
        assert [r["ok"] for r in serial] == [r["ok"] for r in parallel]

    def test_planted_fuzz_divergences_match_across_jobs(self):
        from repro.validate import fuzz

        def reproducers(jobs):
            results = fuzz(2, seed=11, instructions=120, jobs=jobs,
                           plant="ib-take-extra-cycle")
            return [(r["ok"],
                     r["reproducer"].case.instructions
                     if r["reproducer"] is not None else None,
                     r["reproducer"].divergence.field
                     if r["reproducer"] is not None else None)
                    for r in results]

        serial = reproducers(1)
        assert any(not ok for ok, _, _ in serial), \
            "plant did not fire; the determinism check would be vacuous"
        assert serial == reproducers(2)


class TestApiFacade:
    def test_unknown_campaign_is_an_api_error(self):
        with pytest.raises(api.ApiError, match="unknown campaign"):
            api.refute(campaign="no-such-campaign")

    def test_unknown_plant_is_an_api_error(self):
        with pytest.raises(api.ApiError, match="unknown perturbation"):
            api.refute(smoke=True, plant="no-such-plant")

    def test_registered_campaigns(self):
        assert set(CAMPAIGNS) == {"standard", "smoke"}

    def test_planted_smoke_run_reports_ok_when_caught(self, tmp_path):
        result = api.refute(smoke=True, plant="batch-capture-extra-count",
                            store=str(tmp_path / "store"))
        assert result.ok
        assert result.plant == "batch-capture-extra-count"
        assert result.refutations > 0
        assert result.planted_total is None  # self-check skipped
        doc = refute_json(result.campaign_result, result.planted)
        assert doc["ok"]
        assert doc["plant"] == "batch-capture-extra-count"
