"""Rendering of design-space sweep reports."""

import json

from repro.explore.sensitivity import sensitivity
from repro.report.explore import (explore_json, render_axis,
                                  render_decode_claim, render_points,
                                  render_sensitivity)


class TestRenderSensitivity:
    def test_full_report(self, smoke_sweep):
        report = sensitivity(smoke_sweep)
        text = render_sensitivity(report, smoke_sweep.stats)
        assert "spec 'smoke'" in text
        assert "sensitivity to cache_bytes" in text
        assert "sensitivity to overlapped_decode" in text
        assert "overlapped decode" in text
        assert "EXACT" in text

    def test_axis_table_marks_stock_machine(self, smoke_sweep):
        report = sensitivity(smoke_sweep)
        text = render_axis(report["axes"][0])
        lines = text.splitlines()
        assert any("8K*" in line for line in lines)
        assert any(line.lstrip().startswith("4K ") for line in lines)

    def test_decode_claim_mismatch_rendered(self):
        claim = {"baseline_decode_cycles": 10,
                 "overlapped_decode_cycles": 5,
                 "non_pc_changing_dispatches": 6, "cycles_saved": 5,
                 "cycles_saved_per_instruction": 0.5,
                 "baseline_cpi": 10.0, "overlapped_cpi": 9.5,
                 "ok": False}
        assert "MISMATCH" in render_decode_claim(claim)
        assert render_decode_claim(None) == ""

    def test_render_points(self, smoke_sweep):
        text = render_points(smoke_sweep)
        assert "3 points x 5 workloads" in text
        assert "baseline" in text
        assert "overlapped_decode=True" in text


class TestExploreJson:
    def test_document_shape(self, smoke_sweep):
        report = sensitivity(smoke_sweep)
        doc = explore_json(smoke_sweep, report, meta={"suite": "smoke"})
        # Must serialize cleanly (CI archives it).
        parsed = json.loads(json.dumps(doc, sort_keys=True))
        assert parsed["meta"]["suite"] == "smoke"
        assert parsed["spec"]["name"] == "smoke"
        assert len(parsed["points"]) == 3
        assert parsed["sensitivity"]["decode_claim"]["ok"] is True
        baseline = parsed["points"][0]
        assert baseline["label"] == "baseline"
        assert set(baseline["workloads"]) == set(parsed["spec"]["workloads"])
        for record in baseline["workloads"].values():
            assert set(record) == {"cycles", "instructions_measured",
                                   "histogram"}
            assert len(record["histogram"]["sha256"]) == 64
