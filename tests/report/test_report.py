"""Report tests: reference data sanity, renderers, comparison helpers."""

import pytest

from repro.analysis import (Measurement, section4, table1, table2, table3,
                            table4, table5, table6, table7, table8, table9)
from repro.cpu.machine import VAX780
from repro.report import paper
from repro.report.compare import (ShapeReport, dominant_key, same_ordering,
                                  within_factor, within_slack)
from repro.report.format import (render_figure1, render_section4,
                                 render_table1, render_table2,
                                 render_table3, render_table4,
                                 render_table5, render_table6,
                                 render_table7, render_table8,
                                 render_table9)
from tests.helpers import run


@pytest.fixture(scope="module")
def measurement():
    machine = run("""
        movl #20, r6
    loop:
        addl2 #1, r1
        cmpl r1, #5
        bneq skip
        incl r3
    skip:
        sobgtr r6, loop
        halt
    """)
    return Measurement.capture("report-test", machine), machine


class TestPaperData:
    def test_table1_sums_to_100(self):
        assert sum(paper.TABLE1_FREQUENCY.values()) == pytest.approx(
            99.93, abs=0.2)

    def test_table8_rows_sum_to_cpi(self):
        total = sum(paper.TABLE8_ROW_TOTALS.values())
        # Row totals + the partially-legible B-Disp row = CPI.
        assert total <= paper.CYCLES_PER_INSTRUCTION
        assert total > 0.85 * paper.CYCLES_PER_INSTRUCTION

    def test_table8_columns_sum_to_cpi(self):
        assert sum(paper.TABLE8_COLUMN_TOTALS.values()) == pytest.approx(
            paper.CYCLES_PER_INSTRUCTION, abs=0.01)

    def test_table9_consistent_with_table8(self):
        # group execute row total = Table 9 mean x Table 1 frequency.
        for group, mean in paper.TABLE9_TOTALS.items():
            freq = paper.TABLE1_FREQUENCY[group] / 100.0
            expected = paper.TABLE8_ROW_TOTALS[group]
            assert mean * freq == pytest.approx(expected, abs=0.03), group

    def test_section4_split_sums(self):
        s = paper.SECTION4
        assert s["cache_i_misses_per_instruction"] + \
            s["cache_d_misses_per_instruction"] == pytest.approx(
                s["cache_read_misses_per_instruction"])
        assert s["tb_d_misses_per_instruction"] + \
            s["tb_i_misses_per_instruction"] == pytest.approx(
                s["tb_misses_per_instruction"])


class TestRenderers:
    def test_all_renderers_produce_text(self, measurement):
        meas, machine = measurement
        outputs = [
            render_table1(table1(meas)),
            render_table2(table2(meas)),
            render_table3(table3(meas)),
            render_table4(table4(meas)),
            render_table5(table5(meas)),
            render_table6(table6(meas)),
            render_table7(table7(meas)),
            render_table8(table8(meas)),
            render_table9(table9(meas)),
            render_section4(section4(meas)),
        ]
        for i, text in enumerate(outputs, start=1):
            assert isinstance(text, str) and len(text) > 50, f"table {i}"

    def test_table8_render_includes_all_rows(self, measurement):
        meas, _ = measurement
        text = render_table8(table8(meas))
        for row in ("Decode", "Spec 1", "Call/Ret", "Mem Mgmt", "TOTAL"):
            assert row in text

    def test_table1_render_includes_paper_column(self, measurement):
        meas, _ = measurement
        text = render_table1(table1(meas))
        assert "83.60" in text  # the paper's SIMPLE share

    def test_figure1_from_machine(self):
        machine = VAX780()
        text = render_figure1(machine)
        for component in ("EBOX", "Instruction Buffer", "SBI",
                          "Write Buffer", "Translation Buffer"):
            assert component in text


class TestCompareHelpers:
    def test_within_factor(self):
        assert within_factor(5.0, 10.0, 2.0)
        assert not within_factor(4.9, 10.0, 2.0)
        assert within_factor(20.0, 10.0, 2.0)
        assert not within_factor(0.0, 10.0, 2.0)

    def test_within_factor_zero_reference(self):
        assert within_factor(0.0, 0.0, 2.0)
        assert not within_factor(1.0, 0.0, 2.0)

    def test_within_slack(self):
        assert within_slack(10.2, 10.0, 0.5)
        assert not within_slack(10.6, 10.0, 0.5)

    def test_same_ordering(self):
        a = {"x": 3, "y": 2, "z": 1}
        b = {"x": 30, "y": 20, "z": 10}
        c = {"x": 1, "y": 2, "z": 3}
        assert same_ordering(a, b)
        assert not same_ordering(a, c)

    def test_dominant_key(self):
        assert dominant_key({"a": 1, "b": 5, "c": 2}) == "b"

    def test_shape_report(self):
        report = ShapeReport("demo")
        report.check("first", True)
        report.check("second", False, "off by 2x")
        assert not report.passed
        text = report.render()
        assert "PASS" in text and "FAIL" in text and "off by 2x" in text
