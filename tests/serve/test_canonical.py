"""Request canonicalization: one key per distinct job, strict errors."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.serve.canonical import (COMMANDS, CharacterizeRequest,
                                   ExploreRequest, UbenchRequest,
                                   ValidateRequest, parse_request,
                                   request_key)

#: Every characterize field at its dataclass default, spelled out.
CHARACTERIZE_DEFAULTS = {
    "instructions": None, "seed": 1984, "jobs": 1, "paranoid": False,
    "table": "all", "smoke": False, "engine": None,
}


def key_of(cls, payload):
    return request_key(cls.from_payload(payload), code="c0")


class TestKeyEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_default_vs_explicit_values_same_key(self, data):
        """Omitting a field and spelling out its default are the same
        request — any subset of explicit defaults keys identically."""
        subset = data.draw(st.sets(
            st.sampled_from(sorted(CHARACTERIZE_DEFAULTS))))
        payload = {name: CHARACTERIZE_DEFAULTS[name] for name in subset}
        assert key_of(CharacterizeRequest, payload) == \
            key_of(CharacterizeRequest, dict(CHARACTERIZE_DEFAULTS))

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_field_order_is_irrelevant(self, data):
        items = [("instructions", 4000), ("seed", 7), ("jobs", 2),
                 ("paranoid", False), ("table", "4"), ("smoke", False),
                 ("engine", "batch")]
        shuffled = data.draw(st.permutations(items))
        assert key_of(CharacterizeRequest, dict(shuffled)) == \
            key_of(CharacterizeRequest, dict(items))

    def test_shorthands_resolve_before_keying(self):
        base = key_of(CharacterizeRequest, {})
        # 'all', None, and the explicit full table list are one request;
        # an omitted engine is the scalar engine spelled out.
        assert key_of(CharacterizeRequest, {"table": None}) == base
        assert key_of(CharacterizeRequest,
                      {"table": list(api.TABLES)}) == base
        assert key_of(CharacterizeRequest, {"engine": "scalar"}) == base

    def test_smoke_collapses_into_its_budget(self):
        assert key_of(CharacterizeRequest, {"smoke": True}) == \
            key_of(CharacterizeRequest,
                   {"instructions": api.SMOKE_INSTRUCTIONS})

    def test_result_shaping_fields_are_load_bearing(self):
        base = key_of(CharacterizeRequest, {})
        for payload in ({"seed": 7}, {"instructions": 123},
                        {"table": "4"}, {"jobs": 2},
                        {"engine": "batch"}, {"paranoid": True}):
            assert key_of(CharacterizeRequest, payload) != base, payload

    def test_command_and_code_are_load_bearing(self):
        characterize = key_of(CharacterizeRequest, {"smoke": True})
        validate = key_of(ValidateRequest, {"smoke": True})
        assert characterize != validate
        request = CharacterizeRequest.from_payload({"smoke": True})
        assert request_key(request, code="c0") != \
            request_key(request, code="c1")

    def test_explore_spec_resolution(self):
        # A named spec expands to the same axes/budget/seed as its
        # spelled-out equivalent; only the spec *name* (which appears
        # in the result document) may differ.
        named = ExploreRequest.from_payload({"spec": "smoke"})
        resolved = named.canonical()
        spelled = ExploreRequest.from_payload({
            "spec": "smoke",
            "axes": [f"{name}={','.join(map(str, values))}"
                     for name, values in resolved["axes"]],
            "mode": resolved["mode"],
            "instructions": resolved["instructions"],
            "seed": resolved["seed"],
        }).canonical()
        assert {k: v for k, v in spelled.items() if k != "spec"} \
            == {k: v for k, v in resolved.items() if k != "spec"}
        # Defaults spelled out explicitly still key identically.
        assert request_key(named, code="c") == request_key(
            ExploreRequest.from_payload(
                {"spec": "smoke", "jobs": 1, "engine": "scalar"}),
            code="c")


class TestValidation:
    def test_unknown_field_lists_valid_ones(self):
        with pytest.raises(api.ApiError, match="unknown field.*bogus"):
            CharacterizeRequest.from_payload({"bogus": 1})
        with pytest.raises(api.ApiError, match="valid fields"):
            CharacterizeRequest.from_payload({"bogus": 1})

    def test_bad_types_rejected_up_front(self):
        with pytest.raises(api.ApiError, match="seed"):
            CharacterizeRequest.from_payload({"seed": "soon"})
        with pytest.raises(api.ApiError, match="paranoid"):
            CharacterizeRequest.from_payload({"paranoid": 1})
        with pytest.raises(api.ApiError, match="unknown table"):
            CharacterizeRequest.from_payload({"table": "99"})
        with pytest.raises(api.ApiError, match="unknown engine"):
            CharacterizeRequest.from_payload({"engine": "warp"})

    def test_ubench_empty_selection_rejected(self):
        with pytest.raises(api.ApiError, match="no kernels match"):
            UbenchRequest.from_payload({"group": "nonesuch"})

    def test_validate_rejects_auto_engine(self):
        with pytest.raises(api.ApiError, match="unknown engine"):
            ValidateRequest.from_payload({"engine": "auto"})

    def test_parse_request_strictness(self):
        with pytest.raises(api.ApiError, match="JSON object"):
            parse_request([1, 2])
        with pytest.raises(api.ApiError, match="unknown request key"):
            parse_request({"command": "ubench", "params": {},
                           "priority": 9})
        with pytest.raises(api.ApiError, match="unknown command"):
            parse_request({"command": "mine-bitcoin", "params": {}})

    def test_parse_request_default_engine_injection(self):
        doc = {"command": "characterize", "params": {"smoke": True}}
        plain = parse_request(doc)
        assert plain.canonical()["engine"] == "scalar"
        auto = parse_request(doc, default_engine="auto")
        assert auto.canonical()["engine"] == "auto"
        # An explicit engine wins over the server default.
        explicit = parse_request(
            {"command": "characterize",
             "params": {"smoke": True, "engine": "batch"}},
            default_engine="auto")
        assert explicit.canonical()["engine"] == "batch"
        # Engine-less commands are untouched by the default.
        workload = parse_request(
            {"command": "run-workload",
             "params": {"profile": "timesharing-research", "smoke": True}},
            default_engine="auto")
        assert "engine" not in workload.canonical()


class TestFusionGroups:
    def test_only_auto_engine_requests_group(self):
        scalar = CharacterizeRequest.from_payload({"smoke": True})
        assert scalar.fusion_group() is None
        auto = CharacterizeRequest.from_payload(
            {"smoke": True, "engine": "auto"})
        assert auto.fusion_group() is not None

    def test_budget_only_difference_shares_a_group(self):
        a = CharacterizeRequest.from_payload(
            {"instructions": 1000, "engine": "auto"})
        b = CharacterizeRequest.from_payload(
            {"instructions": 9000, "engine": "auto"})
        c = CharacterizeRequest.from_payload(
            {"instructions": 9000, "seed": 7, "engine": "auto"})
        assert a.fusion_group() == b.fusion_group()
        assert a.fusion_group() != c.fusion_group()

    def test_commands_registry_is_consistent(self):
        for name, cls in COMMANDS.items():
            assert cls.command == name
        assert sorted(COMMANDS) == ["characterize", "explore",
                                    "run-workload", "ubench",
                                    "validate"]


class TestCanonicalIsJson:
    def test_every_canonical_round_trips_through_json(self):
        requests = [
            CharacterizeRequest.from_payload({"smoke": True}),
            ValidateRequest.from_payload({"smoke": True}),
            UbenchRequest.from_payload({"smoke": True}),
            ExploreRequest.from_payload({"spec": "smoke"}),
            COMMANDS["run-workload"].from_payload(
                {"profile": "timesharing-research", "smoke": True}),
        ]
        for request in requests:
            canonical = request.canonical()
            assert json.loads(json.dumps(canonical)) == canonical
