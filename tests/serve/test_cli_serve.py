"""The serve/submit CLI surface, including a real SIGTERM drain."""

import json
import os
import signal
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def spawn_server(tmp_path, *extra):
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store", str(tmp_path / "store"), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    line = proc.stdout.readline().strip()
    assert "repro.serve listening on" in line, line
    return proc, line.rsplit(" ", 1)[-1]


def run_submit(url, *args):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", "submit", *args, "--url", url],
        capture_output=True, text=True, env=env, timeout=300)


class TestServeCli:
    def test_submit_roundtrip_and_sigterm_drain(self, tmp_path):
        proc, url = spawn_server(tmp_path)
        try:
            first = run_submit(
                url, "characterize", "--param", "instructions=500",
                "--param", 'table="4"', "--seed", "4801",
                "--json", str(tmp_path / "first.json"))
            assert first.returncode == 0, first.stdout + first.stderr
            assert "done" in first.stdout

            second = run_submit(
                url, "characterize", "--param", "instructions=500",
                "--param", 'table="4"', "--seed", "4801",
                "--json", str(tmp_path / "second.json"))
            assert second.returncode == 0
            assert "cache hit" in second.stdout

            with open(tmp_path / "first.json") as handle:
                a = json.load(handle)
            with open(tmp_path / "second.json") as handle:
                b = json.load(handle)
            assert b["cached"] is True
            assert json.dumps(a["result"], sort_keys=True) \
                == json.dumps(b["result"], sort_keys=True)

            # A job still pending at SIGTERM is drained, not lost: the
            # server exits 0 and its record reaches the store.
            pending = run_submit(
                url, "characterize", "--param", "instructions=700",
                "--param", 'table="4"', "--seed", "4802", "--no-wait")
            assert pending.returncode == 0
        finally:
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, output
        assert "drained and stopped" in output

        from repro.explore.store import ResultStore

        stats = ResultStore(tmp_path / "store").stats()
        assert stats["entries"] == 2        # both distinct jobs persist
        assert stats["quarantined"] == 0

    def test_submit_rejects_bad_params_before_the_wire(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=SRC)
        out = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "characterize",
             "--param", 'table="99"',
             "--url", "http://127.0.0.1:1"],    # never contacted
            capture_output=True, text=True, env=env, timeout=60)
        assert out.returncode == 2
        assert "unknown table" in out.stderr

    def test_submit_unreachable_server_is_a_plain_failure(self):
        env = dict(os.environ, PYTHONPATH=SRC)
        out = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "characterize",
             "--smoke", "--url", "http://127.0.0.1:1"],
            capture_output=True, text=True, env=env, timeout=60)
        assert out.returncode == 1
        assert "cannot reach server" in out.stderr
