"""Traffic shaping units: token buckets, the limiter, retry hints."""

import pytest

from repro.serve.flow import RateLimiter, RetryEstimator, TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.take() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.take()
        assert wait == pytest.approx(0.5)   # 1 token at 2/s
        clock.now += 0.5
        assert bucket.take() == 0.0
        assert bucket.take() > 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.now += 60.0
        assert [bucket.take() for _ in range(2)] == [0.0, 0.0]
        assert bucket.take() > 0.0

    def test_zero_rate_is_a_hard_cap(self):
        bucket = TokenBucket(rate=0.0, burst=1, clock=FakeClock())
        assert bucket.take() == 0.0
        assert bucket.take() == TokenBucket.CAP

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0)
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=-1.0, burst=1)


class TestRateLimiter:
    def test_disabled_by_default_rate(self):
        limiter = RateLimiter(None)
        assert all(limiter.take("anyone") == 0.0 for _ in range(1000))

    def test_clients_are_independent(self):
        limiter = RateLimiter(0.0, burst=1, clock=FakeClock())
        assert limiter.take("a") == 0.0
        assert limiter.take("a") > 0.0
        assert limiter.take("b") == 0.0

    def test_idle_clients_are_pruned(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1, clock=clock)
        for n in range(RateLimiter.MAX_CLIENTS):
            limiter.take(f"client-{n}")
        clock.now += 10.0               # everyone refills to full
        limiter.take("the-straw")
        assert len(limiter._buckets) <= RateLimiter.MAX_CLIENTS


class TestRetryEstimator:
    def test_hint_scales_with_depth_and_duration(self):
        estimator = RetryEstimator(workers=1, initial=2.0)
        assert estimator.retry_after(0) == 2
        assert estimator.retry_after(3) == 8

    def test_workers_divide_the_drain_time(self):
        assert RetryEstimator(workers=4, initial=4.0).retry_after(3) == 4

    def test_clamped_to_sane_bounds(self):
        fast = RetryEstimator(initial=0.001)
        assert fast.retry_after(0) == 1
        slow = RetryEstimator(initial=1e6)
        assert slow.retry_after(50) == RetryEstimator.MAX

    def test_ewma_tracks_observations(self):
        estimator = RetryEstimator(initial=1.0, alpha=0.5)
        estimator.observe(9.0)
        assert estimator.ewma == pytest.approx(5.0)
        estimator.observe(9.0)
        assert estimator.ewma == pytest.approx(7.0)
