"""Engine-auto fusion: co-queued budget-only jobs share one batch run.

``repro serve --engine auto`` injects ``engine="auto"`` into
engine-less characterize submissions; jobs that then differ only in
instruction budget land in one fusion group, and the dispatcher runs
all their (workload x budget) simulations as lanes of a single
lockstep batch before assembling each job's document through the
ordinary facade path.  The lockstep engine's bit-identity contract is
what makes this invisible to clients.
"""

import json

from repro import api
from repro.obs import metrics
from repro.serve import ServeConfig
from repro.serve.canonical import CharacterizeRequest
from repro.serve.server import JobServer
from repro.serve.testing import ServerThread
from repro.workloads.profiles import STANDARD_PROFILES

SEED = 4700
BUDGETS = (400, 600, 800)


def fused_lanes():
    return metrics.counter("serve.fused_lanes").value


class TestFusionPlanning:
    def test_budget_only_jobs_form_one_group(self):
        server = JobServer(ServeConfig(store=None))

        class FakeJob:
            def __init__(self, request):
                self.request = request

        def job(**params):
            return FakeJob(CharacterizeRequest.from_payload(params))

        jobs = [job(instructions=400, engine="auto"),
                job(instructions=600, engine="auto"),
                job(instructions=800, engine="auto"),
                job(instructions=400, engine="scalar"),
                job(instructions=400, seed=7, engine="auto")]
        groups = server._plan_groups(jobs)
        assert sorted(len(group) for group in groups) == [1, 1, 3]


class TestFusionExecution:
    def test_co_queued_budgets_fuse_and_stay_bit_identical(
            self, tmp_path):
        config = ServeConfig(store=str(tmp_path / "store"), workers=1,
                             queue_size=16, engine="auto")
        before = fused_lanes()
        with ServerThread(config) as handle:
            client = handle.client()
            handle.pause_dispatch()
            queued = [client.submit(
                "characterize",
                {"instructions": budget, "seed": SEED, "table": "4"},
                wait=False) for budget in BUDGETS]
            handle.resume_dispatch()
            results = [client.wait(job["id"]) for job in queued]

        assert all(job["status"] == "done" for job in results)
        # The server default turned every submission into an auto job...
        assert all(job["params"]["engine"] == "auto" for job in results)
        # ...and the whole group ran as one batch: every (workload x
        # budget) became a lane, none fell back to scalar reruns.
        assert fused_lanes() - before \
            == len(STANDARD_PROFILES) * len(BUDGETS)
        # Bit-identical to direct facade calls with the same arguments —
        # the memo is cleared first, so the comparison documents come
        # from genuinely fresh simulations, not the server's own runs.
        from repro.workloads import engine as engine_module

        engine_module.clear_cache()
        for budget, job in zip(BUDGETS, results):
            direct = api.characterize(instructions=budget, seed=SEED,
                                      table="4", engine="auto")
            assert json.dumps(direct.to_json(), sort_keys=True) \
                == json.dumps(job["result"], sort_keys=True)

    def test_scalar_submissions_never_fuse(self, tmp_path):
        config = ServeConfig(store=None, workers=1, queue_size=16)
        before = fused_lanes()
        with ServerThread(config) as handle:
            client = handle.client()
            handle.pause_dispatch()
            queued = [client.submit(
                "characterize",
                {"instructions": budget, "seed": SEED + 1,
                 "table": "4"},
                wait=False) for budget in BUDGETS[:2]]
            handle.resume_dispatch()
            for job in queued:
                assert client.wait(job["id"])["status"] == "done"
        assert fused_lanes() == before
