"""The machine field in serve request keys: defaults fold, machines split."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.machines import machine_names
from repro.serve.canonical import COMMANDS, parse_request, request_key

#: The minimum valid payload per command (machine deliberately absent).
BASE_PAYLOADS = {
    "characterize": {},
    "run-workload": {"profile": "rte-educational"},
    "ubench": {"smoke": True},
    "explore": {"smoke": True},
    "validate": {"smoke": True},
}


def key_of(command, payload):
    return request_key(COMMANDS[command].from_payload(payload),
                       code="c0")


class TestMachineKeying:
    @settings(max_examples=20, deadline=None)
    @given(command=st.sampled_from(sorted(BASE_PAYLOADS)),
           spell_default=st.booleans())
    def test_default_machine_spellings_share_a_key(self, command,
                                                   spell_default):
        """Omitting machine, passing None, and naming vax780 are one
        request: the canonical form always carries the resolved name."""
        base = BASE_PAYLOADS[command]
        spelled = dict(base)
        spelled["machine"] = "vax780" if spell_default else None
        assert key_of(command, spelled) == key_of(command, base)

    @settings(max_examples=20, deadline=None)
    @given(command=st.sampled_from(sorted(BASE_PAYLOADS)),
           pair=st.tuples(st.sampled_from(machine_names()),
                          st.sampled_from(machine_names())))
    def test_different_machines_never_collide(self, command, pair):
        first, second = pair
        keys = [key_of(command, dict(BASE_PAYLOADS[command],
                                     machine=name))
                for name in (first, second)]
        assert (keys[0] == keys[1]) == (first == second)

    @pytest.mark.parametrize("command", sorted(BASE_PAYLOADS))
    def test_unknown_machine_is_rejected_at_parse_time(self, command):
        payload = dict(BASE_PAYLOADS[command], machine="pdp11")
        # from_payload canonicalizes eagerly: bad machines never queue
        with pytest.raises(api.ApiError) as err:
            COMMANDS[command].from_payload(payload)
        assert "pdp11" in str(err.value)

    def test_canonical_form_always_names_the_machine(self):
        for command, payload in BASE_PAYLOADS.items():
            canonical = COMMANDS[command].from_payload(
                payload).canonical()
            assert canonical["machine"] == "vax780", command


class TestServeDefaults:
    def test_parse_request_fills_the_server_default_machine(self):
        doc = {"command": "characterize",
               "params": dict(BASE_PAYLOADS["characterize"])}
        request = parse_request(dict(doc), default_machine="uvax78032")
        assert request.canonical()["machine"] == "uvax78032"
        # an explicit machine wins over the server default
        doc["params"]["machine"] = "vax780"
        request = parse_request(doc, default_machine="uvax78032")
        assert request.canonical()["machine"] == "vax780"

    def test_subset_machine_refuses_fuzzing(self):
        with pytest.raises(api.ApiError) as err:
            COMMANDS["validate"].from_payload(
                {"smoke": True, "machine": "uvax78032",
                 "fuzz_cases": 2})
        assert "fuzz" in str(err.value)
