"""The minimal HTTP layer: strict parsing, well-formed responses."""

import asyncio
import json

import pytest

from repro.serve import protocol


def parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await protocol.read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_without_body(self):
        request = parse(b"GET /metrics HTTP/1.1\r\n"
                        b"Host: localhost\r\n\r\n")
        assert request.method == "GET"
        assert request.target == "/metrics"
        assert request.headers["host"] == "localhost"
        assert request.json() is None

    def test_post_with_json_body(self):
        body = json.dumps({"command": "ubench"}).encode()
        request = parse(b"POST /jobs HTTP/1.1\r\n"
                        b"Content-Type: application/json\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body)
        assert request.method == "POST"
        assert request.json() == {"command": "ubench"}

    def test_header_names_lowercase_and_strip(self):
        request = parse(b"GET / HTTP/1.1\r\n"
                        b"X-Repro-Client:  ci  \r\n\r\n")
        assert request.headers["x-repro-client"] == "ci"

    def test_malformed_request_line(self):
        with pytest.raises(protocol.ProtocolError, match="request line"):
            parse(b"GARBAGE\r\n\r\n")

    def test_unsupported_protocol_version(self):
        with pytest.raises(protocol.ProtocolError, match="unsupported"):
            parse(b"GET / SPDY/9\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(protocol.ProtocolError, match="header"):
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(protocol.ProtocolError,
                           match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\nx")

    def test_oversized_body_rejected_before_reading(self):
        huge = protocol.MAX_BODY + 1
        with pytest.raises(protocol.ProtocolError, match="out of range"):
            parse(b"POST / HTTP/1.1\r\n"
                  + f"Content-Length: {huge}\r\n\r\n".encode())

    def test_closed_connection_is_not_a_protocol_error(self):
        with pytest.raises(ConnectionResetError):
            parse(b"")

    def test_non_json_body_fails_at_json_time(self):
        request = parse(b"POST / HTTP/1.1\r\n"
                        b"Content-Length: 4\r\n\r\n{oop")
        with pytest.raises(protocol.ProtocolError, match="JSON"):
            request.json()


class TestResponseBytes:
    def test_shape_and_content_length(self):
        raw = protocol.response_bytes(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Connection: close" in lines
        assert f"Content-Length: {len(body)}" in lines
        assert json.loads(body) == {"ok": True}

    def test_extra_headers_appended(self):
        raw = protocol.response_bytes(429, {"error": "queue full"},
                                      {"Retry-After": "7"})
        head = raw.partition(b"\r\n\r\n")[0].decode()
        assert head.startswith("HTTP/1.1 429 Too Many Requests")
        assert "Retry-After: 7" in head

    def test_every_emitted_status_has_a_reason(self):
        for status in (200, 202, 400, 404, 405, 429, 500, 503):
            assert status in protocol.REASONS

    def test_bodyless_response(self):
        raw = protocol.response_bytes(200)
        assert raw.endswith(b"\r\n\r\n")
        assert b"Content-Length: 0" in raw
