"""End-to-end job server behaviour: dedup, caching, backpressure, drain.

Each test uses its own (instructions, seed) point so the process-wide
engine memo never masks what the *server* deduplicated; the assertions
pin the serve-layer counters (``workers.EXECUTIONS``,
``serve.jobs.executed``) rather than simulation totals.
"""

import json
import threading

import pytest

from repro import api
from repro.obs import metrics
from repro.serve import ServeConfig
from repro.serve import workers
from repro.serve.client import ServeError
from repro.serve.testing import ServerThread

#: A tiny but real characterize job: one table, sub-second budget.
POINT = dict(instructions=500, table="4")


def payload(seed, **extra):
    doc = dict(POINT, seed=seed)
    doc.update(extra)
    return doc


def executed():
    return metrics.counter("serve.jobs.executed").value


class TestDedup:
    def test_concurrent_duplicates_run_one_simulation(self, tmp_path):
        """The acceptance e2e: N concurrent identical submissions ->
        exactly one execution, every client gets the bit-identical
        document a direct facade call produces."""
        config = ServeConfig(store=str(tmp_path / "store"), workers=1,
                             queue_size=16)
        before_exec = workers.EXECUTIONS
        before_counter = executed()
        with ServerThread(config) as handle:
            client = handle.client()
            # Dispatch is held while four clients submit concurrently,
            # so every duplicate demonstrably arrives before anything
            # runs — then one round answers all of them.
            handle.pause_dispatch()
            accepted = []
            lock = threading.Lock()

            def submit():
                job = client.submit("characterize", payload(4601),
                                    wait=False)
                with lock:
                    accepted.append(job)

            threads = [threading.Thread(target=submit)
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len({job["id"] for job in accepted}) == 1
            handle.resume_dispatch()
            results = [client.wait(job["id"]) for job in accepted]

            assert workers.EXECUTIONS - before_exec == 1
            assert executed() - before_counter == 1
            docs = {json.dumps(job["result"], sort_keys=True)
                    for job in results}
            assert len(docs) == 1
            direct = api.characterize(seed=4601, **POINT)
            assert json.dumps(direct.to_json(), sort_keys=True) \
                == docs.pop()
            assert results[0]["coalesced"] == 3

    def test_completed_duplicate_is_a_cache_hit(self, tmp_path):
        config = ServeConfig(store=str(tmp_path / "store"), workers=1)
        with ServerThread(config) as handle:
            client = handle.client()
            first = client.submit("characterize", payload(4602))
            assert first["cached"] is False
            before = executed()
            second = client.submit("characterize", payload(4602))
            assert second["cached"] is True
            assert executed() == before     # no new simulation
            assert second["result"] == first["result"]
            hit_rate = client.metrics()["cache"]["hit_rate"]
            assert hit_rate is not None and hit_rate > 0

    def test_equivalent_spellings_share_one_cache_entry(self, tmp_path):
        config = ServeConfig(store=str(tmp_path / "store"), workers=1)
        with ServerThread(config) as handle:
            client = handle.client()
            first = client.submit("characterize",
                                  payload(4603, engine=None))
            second = client.submit("characterize",
                                   payload(4603, engine="scalar"))
            assert second["cached"] is True
            assert second["key"] == first["key"]

    def test_no_store_still_coalesces_but_never_caches(self, tmp_path):
        config = ServeConfig(store=None, workers=1)
        with ServerThread(config) as handle:
            client = handle.client()
            first = client.submit("characterize", payload(4604))
            second = client.submit("characterize", payload(4604))
            assert first["cached"] is False
            assert second["cached"] is False


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self, tmp_path):
        config = ServeConfig(store=None, workers=1, queue_size=2)
        with ServerThread(config) as handle:
            client = handle.client()
            handle.pause_dispatch()
            accepted = [client.submit("characterize",
                                      payload(4605 + n), wait=False)
                        for n in range(2)]
            with pytest.raises(ServeError) as rejected:
                client.submit("characterize", payload(4699), wait=False)
            assert rejected.value.status == 429
            assert rejected.value.retry_after >= 1
            handle.resume_dispatch()
            # Backpressure lost nothing that was accepted.
            for job in accepted:
                assert client.wait(job["id"])["status"] == "done"
            rejections = client.metrics()["rejected"]
            assert rejections["queue_full"] == 1

    def test_rate_limited_client_gets_429(self, tmp_path):
        config = ServeConfig(store=None, workers=1, rate=0.0, burst=1)
        with ServerThread(config) as handle:
            greedy = handle.client(name="greedy")
            greedy.submit("characterize", payload(4610), wait=False)
            with pytest.raises(ServeError) as rejected:
                greedy.submit("characterize", payload(4610), wait=False)
            assert rejected.value.status == 429
            assert rejected.value.retry_after is not None
            # Another identity is unaffected.
            other = handle.client(name="patient")
            job = other.submit("characterize", payload(4610))
            assert job["status"] == "done"


class TestDrain:
    def test_drain_finishes_queued_work_and_persists_it(self, tmp_path):
        config = ServeConfig(store=str(tmp_path / "store"), workers=1,
                             queue_size=8)
        handle = ServerThread(config).start()
        client = handle.client()
        handle.pause_dispatch()
        queued = [client.submit("characterize", payload(4620 + n),
                                wait=False) for n in range(2)]
        # stop(drain=True) reopens the gate and waits for in-flight
        # work; nothing accepted may be lost.
        handle.stop(drain=True)
        table = handle.server.table
        for job in queued:
            assert table.get(job["id"]).status == "done"
        assert handle.server.store.stats()["entries"] == 2

    def test_draining_server_rejects_new_submissions(self, tmp_path):
        config = ServeConfig(store=None, workers=1)
        with ServerThread(config) as handle:
            handle.do(lambda: setattr(handle.server, "draining", True))
            status, body, _ = handle.submit(
                {"command": "characterize",
                 "params": payload(4630)})
            assert status == 503
            assert "draining" in body["error"]
            handle.do(lambda: setattr(handle.server, "draining", False))


class TestHttpSurface:
    def test_jobs_listing_and_polling(self, tmp_path):
        config = ServeConfig(store=None, workers=1)
        with ServerThread(config) as handle:
            client = handle.client()
            job = client.submit("characterize", payload(4640))
            listed = client.jobs()
            assert [entry["id"] for entry in listed] == [job["id"]]
            polled = client.job(job["id"])
            assert polled["status"] == "done"
            assert polled["result"] == job["result"]

    def test_unknown_job_and_route_are_404(self, tmp_path):
        with ServerThread(ServeConfig(store=None)) as handle:
            client = handle.client()
            with pytest.raises(ServeError) as missing:
                client.job("j999999")
            assert missing.value.status == 404
            with pytest.raises(ServeError) as lost:
                client._checked("GET", "/nope")
            assert lost.value.status == 404
            with pytest.raises(ServeError) as wrong_method:
                client._checked("POST", "/jobs/j000001", {})
            assert wrong_method.value.status == 405

    def test_invalid_submissions_are_400(self, tmp_path):
        with ServerThread(ServeConfig(store=None)) as handle:
            client = handle.client()
            for command, params, pattern in (
                    ("characterize", {"bogus": 1}, "unknown field"),
                    ("characterize", {"table": "99"}, "unknown table"),
                    ("mine-bitcoin", {}, "unknown command")):
                with pytest.raises(ServeError) as rejected:
                    client.submit(command, params, wait=False)
                assert rejected.value.status == 400
                assert pattern in str(rejected.value)

    def test_metrics_document_shape(self, tmp_path):
        config = ServeConfig(store=str(tmp_path / "store"), workers=1)
        with ServerThread(config) as handle:
            client = handle.client()
            client.submit("characterize", payload(4650))
            doc = client.metrics()
            assert doc["queue"]["capacity"] == config.queue_size
            assert doc["jobs"]["done"] == 1
            assert doc["store"]["entries"] == 1
            assert doc["workers"]["configured"] == 1
            assert "serve.jobs.executed" in doc["metrics"]
            health = client.health()
            assert health["ok"] is True and not health["draining"]


class TestFailureEnvelopes:
    def test_execute_returns_error_envelope(self):
        envelope = workers.execute("characterize", {"no_such": True})
        assert envelope["ok"] is False
        assert "TypeError" in envelope["error"]
        assert envelope["seconds"] >= 0

    def test_failed_job_surfaces_to_the_client(self, tmp_path):
        config = ServeConfig(store=None, workers=1)
        with ServerThread(config) as handle:
            # Bypass submission validation to reach the execution-error
            # path: corrupt the queued job's kwargs.
            client = handle.client()
            handle.pause_dispatch()
            job = client.submit("characterize", payload(4660),
                                wait=False)
            def sabotage():
                queued = handle.server.table.get(job["id"])
                queued.request = _Broken(queued.request)
            handle.do(sabotage)
            handle.resume_dispatch()
            polled = client.wait(job["id"])
            assert polled["status"] == "failed"
            assert "ApiError" in polled["error"]


class _Broken:
    """A request whose execution kwargs are garbage (tests only)."""

    def __init__(self, real):
        self.command = real.command
        self._real = real

    def fusion_group(self):
        return None

    def exec_kwargs(self):
        return {"table": "definitely-not-a-table"}

    def canonical(self):
        return self._real.canonical()
