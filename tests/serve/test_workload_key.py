"""Workload naming in serve request keys: spellings collapse, unknowns
never queue, and the schema bump isolates old keys without touching
anything else.

SERVE_SCHEMA 3 made the workload registry the canonicalizer for every
request that names workloads.  The cache contract that follows: two
payloads asking for the same simulation — full name vs. suffix,
``workload`` vs. its deprecated ``profile`` alias, explicit paper five
vs. the default — must map to ONE request key, and a workload the
registry does not know must be rejected at parse time, before the job
ever reaches the queue.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.serve import canonical
from repro.serve.canonical import COMMANDS, parse_request, request_key
from repro.workloads.registry import paper_workload_names, workload_names

PAPER = paper_workload_names()
#: Unambiguous suffixes of paper names (each resolves to exactly one).
SUFFIXES = {"timesharing-research": "research",
            "rte-educational": "educational",
            "rte-commercial": "commercial"}


def key_of(command, payload):
    return request_key(COMMANDS[command].from_payload(payload),
                       code="c0")


class TestSpellingsCollapse:
    @settings(max_examples=30, deadline=None)
    @given(name=st.sampled_from(sorted(SUFFIXES)),
           alias=st.booleans(), suffix=st.booleans())
    def test_equivalent_run_workload_spellings_share_a_key(
            self, name, alias, suffix):
        spelling = SUFFIXES[name] if suffix else name
        field = "profile" if alias else "workload"
        assert key_of("run-workload", {field: spelling}) == \
            key_of("run-workload", {"workload": name})

    def test_agreeing_alias_and_field_are_one_request(self):
        assert key_of("run-workload",
                      {"workload": PAPER[0], "profile": PAPER[0]}) == \
            key_of("run-workload", {"workload": PAPER[0]})

    def test_disagreeing_alias_is_rejected(self):
        with pytest.raises(api.ApiError) as err:
            COMMANDS["run-workload"].from_payload(
                {"workload": PAPER[0], "profile": PAPER[1]})
        assert "disagree" in str(err.value)

    @settings(max_examples=20, deadline=None)
    @given(explicit=st.booleans())
    def test_default_characterize_equals_explicit_paper_five(
            self, explicit):
        payload = {"workloads": list(PAPER)} if explicit else {}
        assert key_of("characterize", payload) == \
            key_of("characterize", {})

    def test_workload_order_and_duplicates_canonicalize(self):
        base = key_of("characterize", {"workloads": list(PAPER)})
        dup = key_of("characterize",
                     {"workloads": list(PAPER) + [PAPER[0]]})
        assert dup == base

    def test_different_workload_sets_never_collide(self):
        assert key_of("characterize",
                      {"workloads": ["compiler-build"]}) != \
            key_of("characterize", {"workloads": ["queue-kernel"]})

    def test_validate_workloads_canonicalize_too(self):
        assert key_of("validate",
                      {"smoke": True, "workloads": ["research"]}) == \
            key_of("validate", {"smoke": True,
                                "workloads": [PAPER[0]]})


class TestParseTimeRejection:
    @settings(max_examples=20, deadline=None)
    @given(command=st.sampled_from(["run-workload", "characterize",
                                    "validate"]))
    def test_unknown_workloads_never_queue(self, command):
        payload = {"run-workload": {"workload": "no-such-load"},
                   "characterize": {"workloads": ["no-such-load"]},
                   "validate": {"smoke": True,
                                "workloads": ["no-such-load"]}}[command]
        with pytest.raises(api.ApiError) as err:
            COMMANDS[command].from_payload(payload)
        assert "no-such-load" in str(err.value)

    def test_trace_paths_are_rejected_over_the_wire(self):
        with pytest.raises(api.ApiError) as err:
            COMMANDS["run-workload"].from_payload(
                {"workload": "trace:/tmp/x.rprt"})
        assert "trace" in str(err.value).lower()

    def test_unsupported_workload_machine_pair_is_rejected(self):
        with pytest.raises(api.ApiError):
            COMMANDS["run-workload"].from_payload(
                {"workload": "transaction-decimal",
                 "machine": "uvax78032"})

    def test_empty_workload_list_is_rejected(self):
        with pytest.raises(api.ApiError):
            COMMANDS["characterize"].from_payload({"workloads": []})


class TestSchemaBump:
    def test_schema_is_part_of_every_key(self, monkeypatch):
        """Bumping SERVE_SCHEMA must invalidate every key — and
        nothing else: the canonical payload itself is unchanged."""
        request = COMMANDS["run-workload"].from_payload(
            {"workload": PAPER[0]})
        before = request_key(request, code="c0")
        canonical_before = request.canonical()
        monkeypatch.setattr(canonical, "SERVE_SCHEMA",
                            canonical.SERVE_SCHEMA + 1)
        assert request_key(request, code="c0") != before
        assert request.canonical() == canonical_before

    def test_code_version_is_part_of_every_key(self):
        request = COMMANDS["run-workload"].from_payload(
            {"workload": PAPER[0]})
        assert request_key(request, code="c0") != \
            request_key(request, code="c1")

    def test_parse_request_round_trip(self):
        body = {"command": "run-workload",
                "params": {"workload": SUFFIXES[PAPER[0]]}}
        request = parse_request(body)
        assert request.canonical()["workload"] == PAPER[0]
