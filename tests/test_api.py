"""The repro.api facade: typing, identity with the engine, errors."""

import dataclasses
import json

import pytest

from repro import api
from repro.workloads import engine
from repro.workloads.profiles import STANDARD_PROFILES

BUDGET = 1_500


class TestResultContract:
    def test_results_are_frozen(self):
        result = api.profiles()
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.profiles = ()

    def test_to_json_is_serialisable_and_kinded(self):
        result = api.characterize(instructions=BUDGET, table="8")
        doc = result.to_json()
        json.dumps(doc)
        assert doc["kind"] == "CharacterizeResult"
        assert doc["cycles"] == result.cycles

    def test_attachments_stay_out_of_json(self):
        result = api.characterize(instructions=BUDGET, table="8")
        assert result.measurement is not None
        assert "measurement" not in result.to_json()


class TestCharacterize:
    def test_bit_identical_to_engine(self):
        result = api.characterize(instructions=BUDGET, table="8")
        composite = engine.standard_composite(BUDGET)
        assert result.cycles == composite.cycles
        assert result.measurement is composite  # same memoised object

    def test_table_selection(self):
        result = api.characterize(instructions=BUDGET, table=("1", "8"))
        assert [entry["table"] for entry in result.tables] == ["1", "8"]
        assert "TABLE 1" in result.tables[0]["text"]

    def test_unknown_table_rejected_before_running(self):
        with pytest.raises(api.ApiError, match="unknown table '99'"):
            api.characterize(table="99")

    def test_smoke_budget(self):
        result = api.characterize(smoke=True, table="8")
        assert result.instructions == api.SMOKE_INSTRUCTIONS


class TestRunWorkload:
    def test_accepts_name_suffix_and_profile(self):
        by_suffix = api.run_workload("research", instructions=BUDGET)
        by_object = api.run_workload(STANDARD_PROFILES[0],
                                     instructions=BUDGET)
        assert by_suffix.profile == by_object.profile
        assert by_suffix.cycles == by_object.cycles

    def test_unknown_profile(self):
        with pytest.raises(api.ApiError, match="unknown workload"):
            api.run_workload("nonexistent")


class TestSmallCommands:
    def test_hotspots_rows_ranked(self):
        result = api.hotspots(instructions=BUDGET, top=5)
        assert len(result.rows) == 5
        cycles = [row["cycles"] for row in result.rows]
        assert cycles == sorted(cycles, reverse=True)
        assert result.total_cycles >= sum(cycles)

    def test_disasm(self):
        result = api.disasm("movl #5, r0\nhalt\n")
        assert any("movl" in line for line in result.lines)
        assert result.to_json()["base"] == 0x200

    def test_figure1(self):
        assert "EBOX" in api.figure1().text

    def test_profiles(self):
        result = api.profiles()
        assert len(result.profiles) == 5
        assert result.profiles[0]["name"] == "timesharing-research"


class TestUbench:
    def test_smoke_suite_ok(self):
        result = api.ubench(smoke=True, check=False)
        assert result.ok
        assert result.failed == ()
        assert result.check_ok is None
        assert result.kernel_count == len(result.results)

    def test_no_matching_kernels(self):
        with pytest.raises(api.ApiError, match="no kernels match"):
            api.ubench(group="bogus", check=False)


class TestExplore:
    def test_unknown_spec(self):
        with pytest.raises(api.ApiError, match="unknown spec"):
            api.explore(spec="nonesuch")

    def test_unknown_axis(self):
        with pytest.raises(api.ApiError, match="unknown axis"):
            api.explore(axes=["cache_size=1,2"])

    def test_points_listing(self, smoke_store):
        listing = api.explore_points(smoke=True, store=smoke_store)
        assert listing.spec == "smoke"
        assert listing.workloads == 5
        assert len(listing.points) == 3
        json.dumps(listing.to_json())

    def test_warm_sweep(self, smoke_sweep, smoke_store):
        result = api.explore(smoke=True, store=smoke_store, jobs=1)
        assert result.stats["simulated"] == 0
        assert result.decode_claim_ok is True
        assert result.ok


class TestValidate:
    def test_smoke_ok(self):
        result = api.validate(smoke=True, fuzz_cases=1,
                              fuzz_instructions=120)
        assert result.ok
        assert result.invariants_ok
        assert result.divergences == 0
        assert result.fuzz_instructions == 120
        assert len(result.reports) == 5

    def test_smoke_caps_fuzz_budget(self):
        result = api.validate(smoke=True, fuzz_cases=0,
                              fuzz_instructions=5_000)
        assert result.fuzz_instructions == 200


class TestPackageFacade:
    def test_lazy_reexports(self):
        import repro

        assert repro.characterize is api.characterize
        assert repro.ApiError is api.ApiError
        assert repro.api is api

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.no_such_thing


class TestEngineSelection:
    def test_unknown_engine_rejected_before_running(self):
        with pytest.raises(api.ApiError,
                           match="unknown engine 'warp'"):
            api.characterize(smoke=True, engine="warp")

    def test_error_lists_the_valid_engines(self):
        with pytest.raises(api.ApiError,
                           match="scalar, batch, auto"):
            api.explore(smoke=True, engine="warp")

    def test_validate_has_no_auto(self):
        """The fuzzer differences one named engine; auto would hide
        which one a report vouches for."""
        with pytest.raises(api.ApiError, match="unknown engine 'auto'"):
            api.validate(smoke=True, engine="auto")

    def test_characterize_batch_engine_is_bit_identical(self):
        # Fresh seed: neither engine can serve this from the memo cache,
        # so the batch run really simulates and the scalar rerun reads
        # the memo entries the batch engine filled — same keys, same
        # bits (the field-level identity proof lives in tests/batch).
        batch = api.characterize(smoke=True, table="1", seed=4711,
                                 engine="batch")
        scalar = api.characterize(smoke=True, table="1", seed=4711)
        assert scalar.engine == "scalar"
        assert batch.engine == "batch"
        assert batch.cycles == scalar.cycles
        assert batch.tables == scalar.tables

    def test_validate_batch_fuzzer_smoke(self):
        result = api.validate(smoke=True, fuzz_cases=1,
                              fuzz_instructions=120, engine="batch")
        assert result.ok
        assert result.engine == "batch"
        assert result.divergences == 0
