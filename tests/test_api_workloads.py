"""The facade's workload surface: listing, selection, and the
original five-workload contract.

``api.workloads()`` is the registry's public listing;
``characterize(workloads=...)`` composites arbitrary registered sets;
and the acceptance pin of the whole redesign — the default
characterize composite is bit-identical to the pre-registry one — is
checked at smoke scale here (the full-budget pin lives in
``tests/machines/test_analytical.py``).
"""

import pytest

from repro import api
from repro.workloads import engine
from repro.workloads.registry import paper_workload_names

PAPER = paper_workload_names()


class TestWorkloadsListing:
    def test_lists_the_whole_registry(self):
        result = api.workloads()
        assert result.count >= 12
        names = [entry["name"] for entry in result.workloads]
        assert tuple(names[:5]) == PAPER
        assert result.default == PAPER[0]

    def test_entries_carry_kind_and_support(self):
        from repro.machines import MACHINES

        result = api.workloads()
        for entry in result.workloads:
            assert entry["kind"] in ("paper", "generator", "trace")
            assert set(entry["supported"]) == set(MACHINES)

    def test_transaction_decimal_reports_its_requirement(self):
        entry = next(e for e in api.workloads().workloads
                     if e["name"] == "transaction-decimal")
        assert not entry["supported"]["uvax78032"]
        assert "ADDP" in entry["requires_families"]

    def test_to_json_round_trips(self):
        import json

        doc = api.workloads().to_json()
        assert json.loads(json.dumps(doc)) == doc


class TestCharacterizeSelection:
    def test_default_carries_the_paper_five(self):
        result = api.characterize(smoke=True, table="8")
        assert result.workloads == PAPER

    def test_custom_subset_composites_exactly_that_set(self):
        result = api.characterize(smoke=True, table="8",
                                  workloads=("compiler-build",
                                             "queue-kernel"))
        assert result.workloads == ("compiler-build", "queue-kernel")
        a = engine.run_workload("compiler-build", 2_000)
        b = engine.run_workload("queue-kernel", 2_000)
        assert result.cycles == a.cycles + b.cycles

    def test_suffixes_resolve_in_selections(self):
        result = api.characterize(smoke=True, table="8",
                                  workloads=("research",))
        assert result.workloads == ("timesharing-research",)

    def test_all_respects_machine_support(self):
        names = api._workload_names("all", "uvax78032")
        assert "transaction-decimal" not in names
        assert "compiler-build" in names
        assert "transaction-decimal" in api._workload_names("all",
                                                            "vax780")

    def test_refused_pair_is_an_api_error(self):
        with pytest.raises(api.ApiError) as err:
            api.characterize(smoke=True,
                             workloads=("transaction-decimal",),
                             machine="uvax78032")
        assert "transaction-decimal" in str(err.value)

    def test_unknown_selection_is_an_api_error(self):
        with pytest.raises(api.ApiError) as err:
            api.characterize(smoke=True, workloads=("no-such-load",))
        assert "no-such-load" in str(err.value)


class TestOriginalCompositeContract:
    def test_default_equals_explicit_paper_five_bitwise(self):
        default = engine.standard_composite(2_000, seed=1984)
        explicit = engine.standard_composite(2_000, seed=1984,
                                             workloads=PAPER)
        assert explicit is default     # same historical memo entry
        assert default.cycles == sum(
            engine.run_workload(name, 2_000, seed=1984).cycles
            for name in PAPER)

    def test_custom_sets_memoise_under_their_own_key(self):
        small = engine.standard_composite(2_000, seed=1984,
                                          workloads=("rte-commercial",))
        again = engine.standard_composite(2_000, seed=1984,
                                          workloads=("rte-commercial",))
        assert small is again
        assert small.cycles == engine.run_workload(
            "rte-commercial", 2_000, seed=1984).cycles


class TestRunWorkloadResult:
    def test_result_reports_the_workload_kind(self):
        paper = api.run_workload("rte-scientific", smoke=True)
        zoo = api.run_workload("cache-thrash", smoke=True)
        assert paper.kind == "paper"
        assert zoo.kind == "generator"
        assert zoo.workload == "cache-thrash" == zoo.profile

    def test_validate_accepts_a_zoo_subset(self):
        result = api.validate(smoke=True, workloads=("tb-thrash",))
        assert result.ok
        assert len(list(result.reports)) == 1
