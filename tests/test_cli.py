"""CLI tests (invoking main() directly)."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "timesharing-research" in out
        assert "rte-commercial" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "EBOX" in out and "SBI" in out

    def test_disasm(self, tmp_path, capsys):
        source = tmp_path / "prog.asm"
        source.write_text("movl #5, r0\nhalt\n")
        assert main(["disasm", str(source)]) == 0
        out = capsys.readouterr().out
        assert "movl    s^#5, r0" in out
        assert "halt" in out

    def test_run_workload(self, capsys):
        assert main(["run-workload", "research",
                     "--instructions", "2500"]) == 0
        out = capsys.readouterr().out
        assert "cycles per instruction" in out
        assert "TABLE 1" in out

    def test_run_workload_paranoid(self, capsys):
        # A distinct budget sidesteps the memoised plain-run result, so
        # the monitor really installs and samples.
        assert main(["run-workload", "research", "--instructions",
                     "2600", "--paranoid"]) == 0
        out = capsys.readouterr().out
        assert "cycles per instruction" in out

    def test_run_workload_unknown_profile(self, capsys):
        assert main(["run-workload", "nonexistent"]) == 2

    def test_hotspots(self, capsys):
        assert main(["hotspots", "--instructions", "2500",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "routine.slot" in out
        assert "decode" in out

    def test_characterize_single_table(self, capsys):
        assert main(["characterize", "--instructions", "1500",
                     "--table", "1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE 1" in out

    def test_characterize_bad_table(self, capsys):
        assert main(["characterize", "--instructions", "1500",
                     "--table", "99"]) == 2

    def test_characterize_bad_table_lists_valid_keys(self, capsys):
        assert main(["characterize", "--table", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown table 'nope'" in err
        for key in ("1", "9", "s4"):
            assert key in err
        # Validation happens before the composite run: nothing printed.
        assert capsys.readouterr().out == ""

    def test_validate_smoke(self, tmp_path, capsys):
        report = tmp_path / "VALIDATE.json"
        assert main(["validate", "--smoke", "--fuzz", "1",
                     "--fuzz-instructions", "120",
                     "--json", str(report)]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out
        assert "1 case(s), 0 divergence(s)" in out
        doc = json.loads(report.read_text())
        assert doc["ok"] is True
        assert doc["meta"]["smoke"] is True
        assert doc["fuzz"]["divergences"] == 0

    def test_version(self, capsys):
        import repro
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert repro.__version__ in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_ubench_smoke(self, tmp_path, capsys):
        import json
        out_json = tmp_path / "UBENCH.json"
        assert main(["ubench", "--smoke", "--no-check", "--jobs", "1",
                     "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "UBENCH - per-kernel cycles" in out
        assert "specifier mode cost" in out
        doc = json.loads(out_json.read_text())
        assert doc["all_exact"] and doc["all_reconciled"]
        assert doc["total_kernels"] == len(doc["kernels"])
        assert doc["meta"]["suite"] == "smoke"

    def test_ubench_filters(self, capsys):
        assert main(["ubench", "--group", "float", "--mode", "register",
                     "--no-check", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "mulf2_rr" in out
        assert "movl_register" not in out

    def test_ubench_no_match(self, capsys):
        assert main(["ubench", "--group", "bogus", "--no-check"]) == 2
        err = capsys.readouterr().err
        assert "no kernels match" in err
        assert "simple" in err and "decimal" in err

    def test_explore_unknown_axis_rejected_before_simulating(
            self, capsys):
        assert main(["explore", "--axis", "cache_size=1,2"]) == 2
        err = capsys.readouterr().err
        assert "unknown axis 'cache_size'" in err
        # The error lists the valid MachineParams fields...
        for field in ("cache_bytes", "tb_entries", "overlapped_decode"):
            assert field in err
        # ...and nothing was simulated or printed before validation.
        assert capsys.readouterr().out == ""

    def test_explore_bad_axis_value_rejected(self, capsys):
        assert main(["explore", "--axis", "cache_bytes=tiny"]) == 2
        assert "not an integer" in capsys.readouterr().err

    def test_explore_unknown_spec(self, capsys):
        assert main(["explore", "--spec", "nonesuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown spec 'nonesuch'" in err
        assert "paper-sensitivity" in err and "smoke" in err

    def test_explore_points_listing_does_not_simulate(self, tmp_path,
                                                      capsys):
        assert main(["explore", "--smoke", "--points",
                     "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "3 points x 5 workloads" in out
        assert "baseline" in out
        assert "overlapped_decode=True" in out
        assert "0/5 cached" in out

    def test_explore_smoke_run(self, tmp_path, capsys, smoke_sweep,
                               smoke_store):
        import json
        out_json = tmp_path / "EXPLORE.json"
        # Reuse the session store: the sweep is warm, so this exercises
        # the full CLI path without re-simulating anything.
        assert main(["explore", "--smoke", "--jobs", "1",
                     "--store", str(smoke_store.root),
                     "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "sensitivity to cache_bytes" in out
        assert "one cycle per non-PC-changing instruction: EXACT" in out
        doc = json.loads(out_json.read_text())
        assert doc["sensitivity"]["decode_claim"]["ok"] is True
        assert doc["stats"]["simulated"] == 0

    def test_ubench_with_consistency_check(self, capsys):
        assert main(["ubench", "--group", "callret", "--jobs", "1",
                     "--check-instructions", "1500"]) == 0
        out = capsys.readouterr().out
        assert "consistency vs. composite" in out
        assert "paper Table 5: 10.6" in out

    def test_engine_flag_validated_before_simulating(self, capsys):
        assert main(["characterize", "--engine", "warp"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine 'warp'" in err
        for name in ("scalar", "batch", "auto"):
            assert name in err
        # Nothing simulated, nothing printed.
        assert capsys.readouterr().out == ""

    def test_validate_rejects_auto_engine(self, capsys):
        assert main(["validate", "--smoke", "--engine", "auto"]) == 2
        assert "unknown engine 'auto'" in capsys.readouterr().err

    def test_explore_smoke_batch_engine(self, tmp_path, capsys):
        import json
        out_json = tmp_path / "EXPLORE.json"
        assert main(["explore", "--smoke", "--engine", "batch",
                     "--store", str(tmp_path / "store"),
                     "--json", str(out_json)]) == 0
        doc = json.loads(out_json.read_text())
        assert doc["meta"]["engine"] == "batch"
        assert doc["stats"]["engine"] == "batch"


class TestWorkloadZooCLI:
    def test_workloads_lists_the_registry(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "timesharing-research" in out
        assert "compiler-build" in out
        assert "vax780" in out and "uvax78032" in out

    def test_workloads_json(self, tmp_path, capsys):
        out_path = tmp_path / "workloads.json"
        assert main(["workloads", "--json", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["count"] >= 12
        names = [entry["name"] for entry in doc["workloads"]]
        assert "transaction-decimal" in names

    def test_record_trace_round_trip(self, tmp_path, capsys):
        from repro.workloads.registry import WORKLOADS, unregister

        trace_path = tmp_path / "commercial.rprt"
        try:
            assert main(["record-trace", "rte-commercial", "--smoke",
                         "--seed", "7", "--out",
                         str(trace_path)]) == 0
            out = capsys.readouterr().out
            assert "registered as workload: trace-rte-commercial" \
                in out
            assert trace_path.exists()
            assert main(["run-workload", f"trace:{trace_path}",
                         "--smoke", "--seed", "7"]) == 0
            out = capsys.readouterr().out
            assert "trace-rte-commercial" in out
        finally:
            for name in [n for n, s in WORKLOADS.items()
                         if s.trace is not None]:
                unregister(name)

    def test_characterize_workload_subset(self, capsys):
        assert main(["characterize", "--smoke", "--table", "8",
                     "--workloads", "compiler-build,queue-kernel"]) == 0
        assert "TABLE 8" in capsys.readouterr().out

    def test_run_workload_zoo_member(self, capsys):
        assert main(["run-workload", "tb-thrash", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "tb-thrash" in out

    def test_unknown_workload_exits_2_and_names_the_roster(self,
                                                           capsys):
        assert main(["run-workload", "no-such-load"]) == 2
        err = capsys.readouterr().err
        assert "no-such-load" in err
        assert "compiler-build" in err
