"""CLI tests (invoking main() directly)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "timesharing-research" in out
        assert "rte-commercial" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "EBOX" in out and "SBI" in out

    def test_disasm(self, tmp_path, capsys):
        source = tmp_path / "prog.asm"
        source.write_text("movl #5, r0\nhalt\n")
        assert main(["disasm", str(source)]) == 0
        out = capsys.readouterr().out
        assert "movl    s^#5, r0" in out
        assert "halt" in out

    def test_run_workload(self, capsys):
        assert main(["run-workload", "research",
                     "--instructions", "2500"]) == 0
        out = capsys.readouterr().out
        assert "cycles per instruction" in out
        assert "TABLE 1" in out

    def test_run_workload_unknown_profile(self, capsys):
        assert main(["run-workload", "nonexistent"]) == 2

    def test_hotspots(self, capsys):
        assert main(["hotspots", "--instructions", "2500",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "routine.slot" in out
        assert "decode" in out

    def test_characterize_single_table(self, capsys):
        assert main(["characterize", "--instructions", "1500",
                     "--table", "1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE 1" in out

    def test_characterize_bad_table(self, capsys):
        assert main(["characterize", "--instructions", "1500",
                     "--table", "99"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
