"""Every subcommand carries the shared flag set; argparse stays in cli.

The shared parent parser exists so that ``--jobs``, ``--seed``,
``--json``, ``--smoke``, ``--store``, ``--engine``, ``--machine``,
``--obs`` and ``--heartbeat`` mean the same thing everywhere.  These tests introspect the built
parser rather than pattern-match help text, so a subcommand that
forgets ``parents=[...]`` fails loudly.
"""

from pathlib import Path

from repro import cli

SRC = Path(cli.__file__).resolve().parent

SHARED_OPTIONS = ["--jobs", "--seed", "--json", "--smoke", "--store",
                  "--engine", "--machine", "--obs", "--heartbeat"]


def _subparsers():
    parser = cli._build_parser()
    action = parser._subparsers._group_actions[0]
    return parser, action.choices


def _options(subparser):
    table = {}
    for action in subparser._actions:
        for flag in action.option_strings:
            table[flag] = action
    return table


class TestSharedFlagSet:
    def test_every_subcommand_has_every_shared_flag(self):
        _, choices = _subparsers()
        assert choices, "no subcommands registered"
        for name, sub in choices.items():
            options = _options(sub)
            for flag in SHARED_OPTIONS:
                assert flag in options, \
                    f"{name} is missing shared flag {flag}"

    def test_shared_flags_agree_across_subcommands(self):
        """Same default, same type, same help — everywhere."""
        _, choices = _subparsers()
        reference = {}
        for name, sub in choices.items():
            for flag in SHARED_OPTIONS:
                action = _options(sub)[flag]
                signature = (action.default, action.type, action.help,
                             action.nargs, action.const)
                if flag not in reference:
                    reference[flag] = (name, signature)
                else:
                    first_name, first_signature = reference[flag]
                    assert signature == first_signature, (
                        f"{flag} differs between {first_name} and "
                        f"{name}: {first_signature} vs {signature}")

    def test_shared_defaults_are_deferred(self):
        """--jobs/--seed default to None so api.* owns the real default."""
        _, choices = _subparsers()
        sub = choices["characterize"]
        options = _options(sub)
        assert options["--jobs"].default is None
        assert options["--seed"].default is None
        assert options["--smoke"].default is False

    def test_flag_table_drives_the_parent(self):
        assert len(cli.SHARED_FLAGS) == len(SHARED_OPTIONS)
        declared = [flags[0] for flags, _ in cli.SHARED_FLAGS]
        assert declared == SHARED_OPTIONS


class TestArgparseStaysInCli:
    def test_only_cli_imports_argparse(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path.name == "cli.py":
                continue
            text = path.read_text()
            if "import argparse" in text:
                offenders.append(str(path.relative_to(SRC)))
        assert offenders == [], (
            "argparse belongs to cli.py alone; found in: "
            + ", ".join(offenders))
