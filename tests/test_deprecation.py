"""The deprecated entry points still work, warn, and agree bit-for-bit."""

import pytest

from repro.workloads import engine, experiments
from repro.workloads.profiles import STANDARD_PROFILES

BUDGET = 1_500


class TestDeprecationShims:
    def test_run_workload_warns_and_matches(self):
        with pytest.warns(DeprecationWarning,
                          match="experiments.run_workload is deprecated"):
            old = experiments.run_workload(STANDARD_PROFILES[0], BUDGET)
        new = engine.run_workload(STANDARD_PROFILES[0], BUDGET)
        assert old is new              # same memoised measurement

    def test_standard_composite_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            old = experiments.standard_composite(instructions=BUDGET)
        new = engine.standard_composite(BUDGET)
        assert old is new
        assert old.cycles == new.cycles

    def test_run_standard_experiments_warns_and_matches(self):
        with pytest.warns(DeprecationWarning):
            old = experiments.run_standard_experiments(
                instructions=BUDGET)
        new = engine.run_standard_experiments(BUDGET)
        assert list(old) == list(new)
        for name in old:
            assert old[name] is new[name]

    def test_clear_cache_warns_and_clears(self):
        engine.run_workload(STANDARD_PROFILES[0], BUDGET)
        with pytest.warns(DeprecationWarning):
            experiments.clear_cache()
        assert engine._CACHE == {}

    def test_default_instructions_reexported(self):
        assert experiments.DEFAULT_INSTRUCTIONS \
            == engine.DEFAULT_INSTRUCTIONS

    def test_old_positional_signature_preserved(self):
        """The shim keeps the original required-positional shape."""
        with pytest.warns(DeprecationWarning):
            measurement = experiments.run_workload(
                STANDARD_PROFILES[0], BUDGET, 1984)
        assert measurement.cycles > 0
