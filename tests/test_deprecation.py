"""The deprecated entry points still work, warn, and agree bit-for-bit."""

import pytest

from repro.workloads import engine, experiments
from repro.workloads.profiles import STANDARD_PROFILES

BUDGET = 1_500


class TestDeprecationShims:
    def test_run_workload_warns_and_matches(self):
        with pytest.warns(DeprecationWarning,
                          match="experiments.run_workload is deprecated"):
            old = experiments.run_workload(STANDARD_PROFILES[0], BUDGET)
        new = engine.run_workload(STANDARD_PROFILES[0], BUDGET)
        assert old is new              # same memoised measurement

    def test_standard_composite_warns_and_matches(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            old = experiments.standard_composite(instructions=BUDGET)
        new = engine.standard_composite(BUDGET)
        assert old is new
        assert old.cycles == new.cycles

    def test_run_standard_experiments_warns_and_matches(self):
        with pytest.warns(DeprecationWarning):
            old = experiments.run_standard_experiments(
                instructions=BUDGET)
        new = engine.run_standard_experiments(BUDGET)
        assert list(old) == list(new)
        for name in old:
            assert old[name] is new[name]

    def test_clear_cache_warns_and_clears(self):
        engine.run_workload(STANDARD_PROFILES[0], BUDGET)
        with pytest.warns(DeprecationWarning):
            experiments.clear_cache()
        assert engine._CACHE == {}

    def test_default_instructions_reexported(self):
        assert experiments.DEFAULT_INSTRUCTIONS \
            == engine.DEFAULT_INSTRUCTIONS

    def test_old_positional_signature_preserved(self):
        """The shim keeps the original required-positional shape."""
        with pytest.warns(DeprecationWarning):
            measurement = experiments.run_workload(
                STANDARD_PROFILES[0], BUDGET, 1984)
        assert measurement.cycles > 0


class TestProfileThreadingDeprecation:
    """PR-10 shims: threading raw MixProfiles where names now belong."""

    def test_engine_warns_for_registered_profile_objects(self):
        with pytest.warns(DeprecationWarning,
                          match="pass the workload name"):
            by_object = engine.run_workload(STANDARD_PROFILES[1],
                                            BUDGET)
        by_name = engine.run_workload(STANDARD_PROFILES[1].name, BUDGET)
        assert by_object is by_name    # same memo entry, bit-identical

    def test_engine_stays_silent_for_ad_hoc_profiles(self, recwarn):
        """Fuzzers and explore variants pass perturbed profiles that
        are deliberately NOT registered; they must not warn."""
        import warnings
        from dataclasses import replace

        ad_hoc = replace(STANDARD_PROFILES[0], name="adhoc-variant",
                         processes=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            measurement = engine.run_workload(ad_hoc, 400)
        assert measurement.cycles > 0

    def test_api_profile_keyword_warns_and_agrees(self):
        from repro import api

        with pytest.warns(DeprecationWarning, match="workload"):
            old = api.run_workload(
                profile=STANDARD_PROFILES[0].name, smoke=True)
        new = api.run_workload(STANDARD_PROFILES[0].name, smoke=True)
        assert old.cycles == new.cycles
        assert old.profile == new.profile

    def test_api_find_profile_shim_warns_and_resolves(self):
        from repro import api

        with pytest.warns(DeprecationWarning, match="find_workload"):
            profile = api._find_profile("research")
        assert profile.name == "timesharing-research"

    def test_api_rejects_unregistered_profile_objects(self):
        from dataclasses import replace

        from repro import api

        ad_hoc = replace(STANDARD_PROFILES[0], name="adhoc-api")
        with pytest.raises(api.ApiError, match="not a registered"):
            api.run_workload(ad_hoc, smoke=True)
