"""MachineParams geometry validation."""

import pytest

from repro.params import MachineParams, VAX780


class TestValidParams:
    def test_stock_machine(self):
        assert VAX780.cache_sets == 512
        assert VAX780.tb_sets_per_half == 32

    @pytest.mark.parametrize("kb", [2, 4, 8, 16, 32])
    def test_cache_size_sweep(self, kb):
        params = VAX780.with_overrides(cache_bytes=kb * 1024)
        assert params.cache_sets == kb * 1024 // 16

    @pytest.mark.parametrize("entries", [32, 64, 128, 256])
    def test_tb_size_sweep(self, entries):
        params = VAX780.with_overrides(tb_entries=entries)
        assert params.tb_sets_per_half == entries // 4

    def test_direct_mapped_cache(self):
        params = VAX780.with_overrides(cache_ways=1)
        assert params.cache_sets == 1024

    def test_zero_recycle_and_penalty_allowed(self):
        params = VAX780.with_overrides(write_recycle=0,
                                       read_miss_penalty=0)
        assert params.write_recycle == 0


class TestInvalidParams:
    def test_cache_not_divisible(self):
        with pytest.raises(ValueError, match="not divisible"):
            VAX780.with_overrides(cache_bytes=5000)

    def test_cache_sets_not_power_of_two(self):
        # 9600 / (2 * 8) = 600 sets: divisible, but not a power of two.
        with pytest.raises(ValueError, match="power of two"):
            VAX780.with_overrides(cache_bytes=9600)

    def test_tb_not_divisible_into_halves(self):
        with pytest.raises(ValueError, match="tb_entries=90"):
            VAX780.with_overrides(tb_entries=90)

    def test_tb_sets_not_power_of_two(self):
        # 100 / (2 * 2) = 25 sets per half.
        with pytest.raises(ValueError, match="power of two"):
            VAX780.with_overrides(tb_entries=100)

    def test_non_power_of_two_page(self):
        with pytest.raises(ValueError, match="page_bytes"):
            VAX780.with_overrides(page_bytes=500)

    def test_ib_fill_larger_than_ib(self):
        with pytest.raises(ValueError, match="ib_fill_bytes"):
            VAX780.with_overrides(ib_fill_bytes=16)

    @pytest.mark.parametrize("field", ["cycle_ns", "memory_bytes",
                                       "cache_bytes", "cache_ways",
                                       "tb_entries", "page_bytes"])
    def test_zero_and_negative_rejected(self, field):
        with pytest.raises(ValueError, match="positive integer"):
            VAX780.with_overrides(**{field: 0})
        with pytest.raises(ValueError, match="positive integer"):
            VAX780.with_overrides(**{field: -1})

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            VAX780.with_overrides(cache_bytes=8192.0)
        with pytest.raises(ValueError, match="positive integer"):
            VAX780.with_overrides(cache_ways=True)

    def test_negative_stall_cycles_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            VAX780.with_overrides(read_miss_penalty=-1)

    def test_direct_construction_validates_too(self):
        with pytest.raises(ValueError):
            MachineParams(cache_bytes=7)


class TestIntrospection:
    def test_field_names_in_declaration_order(self):
        names = MachineParams.field_names()
        assert names[0] == "cycle_ns"
        assert "cache_bytes" in names
        assert "overlapped_decode" in names
