"""Microbenchmark subsystem tests."""
