"""Microbenchmark model vs. composite measurement coherence.

The consistency pass predicts each opcode group's execute-row busy
cycles in the *composite* workload from the same per-family constants
the kernel model uses; agreement must be within the 5% tolerance (in
practice it is exact — the slack exists for data-dependent slots
carried at measured values and for aborted instructions).
"""

import pytest

from repro.ubench.consistency import check_composite
from repro.workloads import engine

INSTRUCTIONS = 1500
SEED = 1984


@pytest.fixture(scope="module")
def composite():
    return engine.standard_composite(instructions=INSTRUCTIONS,
                                          seed=SEED)


def test_groups_within_tolerance(composite):
    check = check_composite(composite)
    assert check["ok"], [
        (r["group"], r["rel_err"]) for r in check["rows"] if not r["ok"]]


def test_rows_cover_populated_groups(composite):
    check = check_composite(composite)
    groups = {r["group"] for r in check["rows"]}
    # The composite always executes simple/callret/system code at least.
    assert "simple+field" in groups
    assert "callret" in groups
    assert "system" in groups


def test_modeled_fraction_reported(composite):
    check = check_composite(composite)
    for row in check["rows"]:
        assert 0.0 <= row["modeled_fraction"] <= 1.0


def test_summary_fields(composite):
    check = check_composite(composite)
    assert check["instructions"] == 5 * INSTRUCTIONS
    assert check["cycles"] == composite.cycles
    assert check["cpi"] == pytest.approx(
        composite.cycles / (5 * INSTRUCTIONS))
    assert check["paper_cpi"] == 10.6
