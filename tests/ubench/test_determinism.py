"""Serial/parallel equivalence of the microbenchmark fan-out.

Same pattern as ``tests/integration/test_determinism.py``: the process
pool may only change when wall-clock time is spent, never what is
measured.  Each kernel runs on a fresh machine, so the full result
dicts — histogram-derived buckets, itemized overheads, cycle totals —
must be bit-identical for any ``jobs`` value.
"""

from repro.ubench import runner, suite

_KERNELS = [suite.kernel_by_name(name) for name in
            ("movl_register", "movl_disp_byte", "addl2_rr",
             "sobgtr_taken", "calls_ret", "movl_disp_cold")]


def test_jobs_1_vs_jobs_n_identical():
    serial = runner.run_suite(_KERNELS, jobs=1, warmup=2, copies=8)
    parallel = runner.run_suite(_KERNELS, jobs=3, warmup=2, copies=8)
    assert serial == parallel


def test_repeated_serial_runs_identical():
    first = runner.run_suite(_KERNELS, jobs=1, warmup=2, copies=8)
    second = runner.run_suite(_KERNELS, jobs=1, warmup=2, copies=8)
    assert first == second


def test_order_preserved():
    results = runner.run_suite(_KERNELS, jobs=3, warmup=2, copies=8)
    assert [r["kernel"] for r in results] == [k.name for k in _KERNELS]
