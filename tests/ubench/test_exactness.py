"""The subsystem's core contract: measured busy cycles == model, exactly.

Every kernel in the standard suite must satisfy two properties:

* **exact** — each busy bucket (decode / patch / spec / fused / bdisp /
  execute) of the measured µPC histogram equals ``copies x`` the
  analytical prediction; busy cycles are state-independent, so any
  mismatch is a bug in the engine or the model;
* **reconciled** — busy buckets plus the itemized overhead causes
  (IB stall, cache stalls, TB-miss service, unaligned, interrupts)
  account for every cycle the session measured: nothing is dropped,
  nothing double-counted.
"""

import pytest

from repro.ubench import model, runner, suite

_SMALL = dict(warmup=2, copies=8)


@pytest.mark.parametrize("kernel", suite.STANDARD_SUITE,
                         ids=lambda k: k.name)
def test_kernel_exact_and_reconciled(kernel):
    result = runner.run_kernel(kernel, **_SMALL)
    assert result["reconciled"], (
        f"{kernel.name}: busy + overhead != total cycles")
    assert result["exact"], (
        f"{kernel.name}: busy-bucket delta {result['busy_delta']}")


def test_zero_copies_is_a_clear_error():
    kernel = suite.STANDARD_SUITE[0]
    with pytest.raises(runner.UbenchError, match="at least one"):
        runner.run_kernel(kernel, warmup=2, copies=0)
    with pytest.raises(runner.UbenchError, match="at least one"):
        runner.run_kernel(kernel, warmup=2, copies=-1)


def test_suite_covers_every_opcode_group():
    assert set(suite.groups()) == {"simple", "field", "float", "callret",
                                   "system", "character", "decimal"}


def test_smoke_suite_is_a_subset():
    names = {k.name for k in suite.STANDARD_SUITE}
    assert {k.name for k in suite.SMOKE_SUITE} <= names
    assert 10 <= len(suite.SMOKE_SUITE) <= 20


def test_cold_variant_pays_itemized_misses():
    kernel = suite.kernel_by_name("movl_disp_cold")
    result = runner.run_kernel(kernel, **_SMALL)
    # Busy cycles stay exact; compulsory misses are itemized, not lost.
    assert result["exact"]
    assert result["overhead"].get("tb-miss", 0) > 0
    assert result["overhead"].get("read-stall", 0) > 0


def test_warm_counterpart_has_no_miss_overhead():
    kernel = suite.kernel_by_name("movl_disp_long")
    result = runner.run_kernel(kernel, **_SMALL)
    assert result["overhead"].get("tb-miss", 0) == 0
    assert result["overhead"].get("read-stall", 0) == 0


def test_predictions_are_stable_constants():
    # The model consults only the kernel description, never a machine:
    # repeated calls agree, and every bucket is a non-negative int.
    for kernel in suite.STANDARD_SUITE:
        first = model.predict_kernel(kernel)
        assert first == model.predict_kernel(kernel)
        for bucket in model.BUCKETS:
            assert first[bucket] >= 0
        assert first["total"] == sum(first[b] for b in model.BUCKETS)


def test_classification_is_total():
    # Every control-store address classifies for both planes.
    from repro.analysis.reduction import reference_map
    cat, stall_cat = runner.classification()
    store, _ = reference_map()
    for ann in store.annotations():
        assert ann.address in cat
        assert ann.address in stall_cat
