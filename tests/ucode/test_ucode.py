"""Tests for the control store, microcode map, rows and registry."""

import pytest

from repro.arch.groups import OpcodeGroup
from repro.arch.opcodes import ALL_OPCODES
from repro.ucode.controlstore import (Annotation, ControlStore,
                                      ControlStoreFullError)
from repro.ucode.map import MicrocodeMap
from repro.ucode.registry import EXECUTORS, executor
from repro.ucode.rows import (COLUMN_ORDER, Column, CycleKind, EXECUTE_ROW,
                              ROW_ORDER, Row)
import repro.cpu.executors  # noqa: F401  (registers executors)


class TestControlStore:
    def test_sequential_allocation(self):
        store = ControlStore(size=16)
        a = store.allocate("r", "s0", Row.DECODE, CycleKind.COMPUTE)
        b = store.allocate("r", "s1", Row.DECODE, CycleKind.READ)
        assert (a, b) == (0, 1)
        assert store.allocated == 2

    def test_annotation_lookup(self):
        store = ControlStore(size=16)
        addr = store.allocate("routine", "slot", Row.SPEC1, CycleKind.WRITE)
        ann = store.annotation(addr)
        assert ann.routine == "routine"
        assert ann.slot == "slot"
        assert ann.row is Row.SPEC1
        assert ann.kind is CycleKind.WRITE

    def test_exhaustion_raises(self):
        store = ControlStore(size=1)
        store.allocate("r", "a", Row.DECODE, CycleKind.COMPUTE)
        with pytest.raises(ControlStoreFullError):
            store.allocate("r", "b", Row.DECODE, CycleKind.COMPUTE)

    def test_block_helpers(self):
        store = ControlStore(size=16)
        block = store.block("exec.TEST", Row.EX_SIMPLE)
        c = block.compute("c")
        r = block.read("r")
        w = block.write("w")
        s = block.ib_stall("s")
        kinds = [store.annotation(a).kind for a in (c, r, w, s)]
        assert kinds == [CycleKind.COMPUTE, CycleKind.READ,
                         CycleKind.WRITE, CycleKind.IB_STALL]

    def test_addresses_for_routine(self):
        store = ControlStore(size=16)
        block = store.block("mine", Row.BDISP)
        addrs = {block.compute("a"), block.compute("b")}
        assert set(store.addresses_for_routine("mine")) == addrs


class TestCycleKinds:
    def test_primary_columns(self):
        assert CycleKind.COMPUTE.primary_column is Column.COMPUTE
        assert CycleKind.READ.primary_column is Column.READ
        assert CycleKind.WRITE.primary_column is Column.WRITE
        assert CycleKind.IB_STALL.primary_column is Column.IBSTALL

    def test_stall_columns(self):
        assert CycleKind.READ.stall_column is Column.RSTALL
        assert CycleKind.WRITE.stall_column is Column.WSTALL
        assert CycleKind.COMPUTE.stall_column is None

    def test_row_order_matches_paper(self):
        values = [row.value for row in ROW_ORDER]
        assert values[0] == "Decode"
        assert values[-1] == "Aborts"
        assert "Call/Ret" in values

    def test_six_columns(self):
        assert len(COLUMN_ORDER) == 6


class TestMicrocodeMap:
    def test_every_family_has_ird_and_exec_flow(self):
        store = ControlStore()
        umap = MicrocodeMap(store)
        families = {info.family for info in ALL_OPCODES}
        assert set(umap.ird) == families
        assert set(umap.exec_flows) == families

    def test_exec_rows_match_groups(self):
        store = ControlStore()
        umap = MicrocodeMap(store)
        for info in ALL_OPCODES:
            for addr in umap.exec_flows[info.family].values():
                assert store.annotation(addr).row is \
                    EXECUTE_ROW[info.group]

    def test_spec_flows_per_row(self):
        store = ControlStore()
        umap = MicrocodeMap(store)
        for row in (Row.SPEC1, Row.SPEC26):
            assert umap.spec_flows[row]
            stall_ann = store.annotation(umap.spec_stall[row])
            assert stall_ann.kind is CycleKind.IB_STALL
            assert stall_ann.row is row

    def test_index_calc_in_spec26(self):
        store = ControlStore()
        umap = MicrocodeMap(store)
        assert store.annotation(umap.index_calc).row is Row.SPEC26

    def test_deterministic_allocation(self):
        # The analysis relies on the map being identical across machines.
        a = MicrocodeMap(ControlStore())
        b = MicrocodeMap(ControlStore())
        assert a.ird == b.ird
        assert a.exec_flows == b.exec_flows
        assert a.tbm_entry == b.tbm_entry

    def test_fits_in_board(self):
        store = ControlStore()
        MicrocodeMap(store)
        assert store.allocated < store.size


class TestRegistry:
    def test_all_groups_covered(self):
        families_by_group = {}
        for info in ALL_OPCODES:
            families_by_group.setdefault(info.group, set()).add(info.family)
        for group, families in families_by_group.items():
            for family in families:
                assert family in EXECUTORS, (group, family)

    def test_duplicate_family_rejected(self):
        with pytest.raises(ValueError):
            @executor("MOV", slots={"x": "C"})
            def duplicate(ebox, inst, ops, u):
                pass

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            @executor("NEWFAM_TEST", slots={"x": "Q"})
            def badkind(ebox, inst, ops, u):
                pass
