"""Differential fuzzing harness: clean engines agree, broken ones shrink.

The load-bearing test plants a real bug — an off-by-one stall charge in
the fast path's IB take — and demands the harness catch it *and* shrink
it to a reproducer of at most ten instructions, which is what makes a
divergence report actionable.
"""

import random

import pytest

from repro.cpu.ebox import EBox
from repro.validate.differential import (FuzzCase, WINDOW, fuzz,
                                         random_case, run_case, shrink)
from repro.workloads.profiles import COMMERCIAL, TIMESHARING_RESEARCH


class TestCleanEngines:
    def test_standard_profile_runs_clean(self):
        case = FuzzCase(TIMESHARING_RESEARCH, seed=1984, instructions=300)
        assert run_case(case) is None

    def test_fuzz_batch_runs_clean(self):
        results = fuzz(2, seed=0, instructions=250)
        assert len(results) == 2
        assert all(r["ok"] for r in results)
        assert all(r["reproducer"] is None for r in results)

    def test_random_cases_are_deterministic(self):
        a = [random_case(random.Random(7), i, 100) for i in range(4)]
        b = [random_case(random.Random(7), i, 100) for i in range(4)]
        assert [c.label() for c in a] == [c.label() for c in b]
        # The knob perturbations actually vary the profiles.
        assert len({c.profile.name for c in a}) == 4


class TestBrokenFastPath:
    @pytest.fixture
    def broken_ib_take(self, monkeypatch):
        """Plant an off-by-one stall in the *fast* engine only.

        ``ReferenceEBox`` overrides ``ib_take``, so patching the base
        class skews just the optimised path — exactly the bug class the
        harness exists to catch.
        """
        original = EBox.ib_take

        def skewed(self, nbytes, stall_upc):
            original(self, nbytes, stall_upc)
            self.tick(1)

        monkeypatch.setattr(EBox, "ib_take", skewed)

    def test_divergence_caught_and_shrunk(self, broken_ib_take):
        case = FuzzCase(COMMERCIAL, seed=3, instructions=300)
        divergence = run_case(case)
        assert divergence is not None
        assert divergence.field == "now"
        assert divergence.fast > divergence.reference

        reproducer = shrink(divergence)
        assert reproducer.case.instructions <= 10
        assert reproducer.divergence.field == "now"
        assert len(reproducer.divergence.window) <= WINDOW
        text = reproducer.describe()
        assert "minimal reproducer" in text
        assert "fast=" in text and "reference=" in text

    def test_fuzz_reports_the_divergence(self, broken_ib_take):
        results = fuzz(1, seed=0, instructions=120)
        assert not results[0]["ok"]
        assert results[0]["reproducer"].case.instructions <= 10
