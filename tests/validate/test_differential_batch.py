"""The scalar<->batch differential axis: clean runs agree, planted
corruption is caught and shrinks to a minimal budget.

The broken-engine test plants its bug in the batch side's histogram
sink — a single corrupted bucket — and demands the harness name the
divergent field exactly and shrink the reproducer to the first capture
boundary that exhibits it.
"""

import pytest

from repro.batch import BatchHistogramSink
from repro.validate.differential import (FuzzCase, batch_targets,
                                         fuzz_batch, run_case_batch,
                                         shrink_batch)
from repro.workloads.profiles import TIMESHARING_RESEARCH


class TestTargets:
    def test_prefix_boundaries_ascend_and_end_at_the_budget(self):
        assert batch_targets(400) == [133, 200, 400]
        assert batch_targets(3) == [1, 3]
        assert batch_targets(1) == [1]


class TestCleanEngines:
    def test_standard_profile_runs_clean(self):
        case = FuzzCase(TIMESHARING_RESEARCH, seed=1984,
                        instructions=300)
        assert run_case_batch(case) is None

    def test_fuzz_batch_runs_clean(self):
        results = fuzz_batch(2, seed=0, instructions=250)
        assert len(results) == 2
        assert all(r["ok"] for r in results)
        assert all(r["reproducer"] is None for r in results)

    def test_fuzz_batch_draws_the_same_cases_as_fuzz(self):
        """Same (seed, count) -> same labels, so a divergence found on
        one axis can be replayed on the other."""
        from repro.validate.differential import fuzz

        batch = fuzz_batch(2, seed=3, instructions=200)
        scalar = fuzz(2, seed=3, instructions=200)
        assert [r["label"] for r in batch] == \
            [r["label"] for r in scalar]


class TestBrokenSink:
    @pytest.fixture
    def corrupted_bucket(self, monkeypatch):
        """Plant a one-count error in bucket 7 of every captured row."""
        real_capture = BatchHistogramSink.capture

        def capture(self, row, board):
            histogram = real_capture(self, row, board)
            self.nonstalled[row, 7] += 1
            return self.histogram(row)

        monkeypatch.setattr(BatchHistogramSink, "capture", capture)

    def test_divergence_names_the_corrupted_bucket(self,
                                                   corrupted_bucket):
        case = FuzzCase(TIMESHARING_RESEARCH, seed=1984,
                        instructions=300)
        divergence = run_case_batch(case)
        assert divergence is not None
        assert divergence.field == "histogram.nonstalled[7]"
        assert divergence.fast == divergence.reference + 1
        # Caught at the very first capture boundary.
        assert divergence.step == 0
        assert divergence.instructions == batch_targets(300)[0]

    def test_shrinks_to_the_first_boundary(self, corrupted_bucket):
        case = FuzzCase(TIMESHARING_RESEARCH, seed=1984,
                        instructions=300)
        reproducer = shrink_batch(run_case_batch(case))
        assert reproducer.divergence.instructions == 1
        assert reproducer.case.instructions == 1
        assert "histogram.nonstalled[7]" in reproducer.describe()

    def test_fuzz_batch_reports_the_reproducer(self, corrupted_bucket):
        results = fuzz_batch(1, seed=0, instructions=120)
        assert not results[0]["ok"]
        reproducer = results[0]["reproducer"]
        assert reproducer is not None
        assert reproducer.divergence.field == "histogram.nonstalled[7]"


class TestErrorMismatch:
    def test_one_sided_failure_is_an_error_divergence(self, monkeypatch):
        """If only the batch side fails a target, the field is 'error'."""
        from repro.batch import engine as engine_module

        def capture(self, state):
            self._fail_target(state, "injected batch-only failure")

        monkeypatch.setattr(engine_module.BatchRunner, "_capture",
                            capture)
        case = FuzzCase(TIMESHARING_RESEARCH, seed=1984,
                        instructions=300)
        divergence = run_case_batch(case)
        assert divergence is not None
        assert divergence.field == "error"
        assert divergence.fast == "injected batch-only failure"
        assert divergence.reference is None
