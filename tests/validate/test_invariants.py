"""The conservation laws hold exactly on real runs — and catch tampering.

Three run shapes cover the law classes: ungated standard workloads
(every law exact), a run where the Null process closed the measurement
gate (cross-instrument laws weaken to bounds but still hold), and a
bare-metal run with page faults and faulted TB-miss services (the
abort/fault counters participate).  A final group mutates captured
measurements one counter at a time and demands the checker notices.
"""

import pytest

from repro.analysis.measurement import Measurement
from repro.cpu.machine import VAX780
from repro.osim.executive import Executive
from repro.validate import (InvariantViolation, check_machine,
                            check_measurement)
from repro.workloads.profiles import (MixProfile, STANDARD_PROFILES,
                                      TIMESHARING_RESEARCH)
from tests.cpu.test_faults import boot_with_fault_handler


def run_profile(profile, instructions=4000, seed=1984):
    machine = VAX780()
    executive = Executive(machine, profile, seed=seed)
    executive.boot()
    executive.run(instructions)
    return machine


class TestStandardWorkloads:
    @pytest.mark.parametrize("profile", STANDARD_PROFILES,
                             ids=lambda p: p.name)
    def test_all_laws_exact(self, profile):
        machine = run_profile(profile)
        report = check_machine(machine, profile.name)
        report.raise_on_failure()
        # The standard workloads never close the gate, so only the
        # deliberately conservative write-issue law stays a bound.
        assert machine.tracer.gated_off_cycles == 0
        bounds = [c.name for c in report.checks if c.relation == "<="]
        assert bounds == ["write-issues"]

    def test_composite_obeys_the_laws(self):
        from repro.analysis.measurement import composite

        measurements = [
            Measurement.capture(p.name, run_profile(p, 2500))
            for p in STANDARD_PROFILES[:3]]
        check_measurement(composite(measurements)).raise_on_failure()


class TestGatedRun:
    def test_laws_hold_with_the_gate_closed(self):
        profile = MixProfile(name="idle", description="idle", processes=1,
                             io_block_cycles=200000)
        machine = VAX780()
        executive = Executive(machine, profile, seed=9)
        executive.boot()
        executive.run(2000)
        executive.scheduler.block_current(0)
        machine.sisr |= 1 << 3
        for _ in range(700):
            machine.step()
        assert executive.scheduler.current.is_null
        assert not machine.board.enabled
        report = check_machine(machine, "gated")
        report.raise_on_failure()
        assert machine.tracer.gated_off_cycles > 0
        # The headline conservation law stays exact even when gated.
        names = [c.name for c in report.checks if c.relation == "=="]
        assert "cycle-conservation" in names


class TestFaultingRun:
    def test_laws_hold_across_aborts_and_tb_fault_exits(self):
        machine, _ = boot_with_fault_handler("""
            movl @#^x80060004, r0
            movl @#^x80061004, r1
            halt
        """)
        for va in (0x80060004, 0x80061004):
            machine.translator.set_valid(va, False)
        machine.mem.debug_write(0x60004, 1, 4)
        machine.mem.debug_write(0x61004, 2, 4)
        machine.run(200)
        assert machine.halted
        assert machine.tracer.instruction_aborts == 2
        assert machine.tracer.tb_miss_faults == 2
        check_machine(machine, "faulting").raise_on_failure()


class TestTamperDetection:
    @pytest.fixture(scope="class")
    def machine(self):
        return run_profile(TIMESHARING_RESEARCH, 3000)

    def capture(self, machine):
        return Measurement.capture("tamper", machine)

    def test_lost_cycle_is_caught(self, machine):
        measurement = self.capture(machine)
        measurement.cycles += 1
        report = check_measurement(measurement)
        assert not report.ok
        assert [c.name for c in report.failures()] == ["cycle-conservation"]
        with pytest.raises(InvariantViolation, match="cycle-conservation"):
            report.raise_on_failure()

    def test_phantom_overlap_is_caught(self, machine):
        measurement = self.capture(machine)
        measurement.tracer.overlapped_decodes += 1
        assert not check_measurement(measurement).ok

    def test_dropped_dispatch_is_caught(self, machine):
        measurement = self.capture(machine)
        measurement.tracer.decode_dispatches -= 1
        failed = {c.name for c in check_measurement(measurement).failures()}
        assert "instructions-reduction-vs-dispatches" in failed
        assert "instructions-dispatch-vs-completed" in failed

    def test_miscounted_tb_service_is_caught(self, machine):
        measurement = self.capture(machine)
        measurement.tracer.tb_miss_cycles += 1
        failed = {c.name for c in check_measurement(measurement).failures()}
        assert failed == {"tb-service-cycles"}

    def test_report_serializes(self, machine):
        report = check_measurement(self.capture(machine))
        doc = report.to_dict()
        assert doc["ok"] is True
        assert len(doc["checks"]) == len(report.checks)
        assert all(c["ok"] for c in doc["checks"])
