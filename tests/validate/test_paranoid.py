"""Sampled invariant monitoring (--paranoid mode)."""

import pytest

from repro.cpu.machine import VAX780
from repro.osim.executive import Executive
from repro.validate import InvariantViolation, ParanoidMonitor
from repro.workloads.profiles import TIMESHARING_RESEARCH


def booted():
    machine = VAX780()
    executive = Executive(machine, TIMESHARING_RESEARCH, seed=1984)
    executive.boot()
    return machine, executive


class TestParanoidMonitor:
    def test_clean_run_samples_without_raising(self):
        machine, executive = booted()
        with ParanoidMonitor(machine, interval=256) as monitor:
            executive.run(4000)
        assert monitor.samples > 0
        assert machine.boundary_hook is None or \
            machine.boundary_hook is not monitor._on_boundary

    def test_hook_chain_is_restored(self):
        machine, _ = booted()
        calls = []
        machine.boundary_hook = lambda m: calls.append(m.cycles)
        previous = machine.boundary_hook
        with ParanoidMonitor(machine, interval=64):
            machine.step()
        assert machine.boundary_hook is previous
        assert calls, "the chained previous hook still fires"

    def test_corrupted_histogram_raises_at_check(self):
        machine, executive = booted()
        monitor = ParanoidMonitor(machine, interval=1 << 19).install()
        executive.run(500)
        machine.board.nonstalled[0] += 1  # a cycle nobody spent
        with pytest.raises(InvariantViolation,
                           match="cycle conservation broke"):
            monitor.check_now()

    def test_counter_clear_rebases_instead_of_raising(self):
        machine, executive = booted()
        monitor = ParanoidMonitor(machine, interval=1 << 19).install()
        executive.run(500)
        monitor.check_now()  # rolls the baseline past the boot state
        rebases = monitor.rebases
        machine.board.clear()
        monitor.check_now()  # histogram shrank: rebase, not violation
        assert monitor.rebases == rebases + 1
        executive.run(500)
        monitor.uninstall()
        assert monitor.samples >= 1
