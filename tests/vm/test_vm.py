"""Unit tests for virtual addressing, page tables and the TB."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.physmem import PhysicalMemory
from repro.vm.address import (P0, P1, S0, S0_BASE, is_system_space, make_va,
                              offset_of, region_of, vpn_of)
from repro.vm.pagetable import (AddressSpace, PageFault, RegionTable,
                                TranslationNotMapped, Translator)
from repro.vm.tb import TranslationBuffer


class TestAddressDecomposition:
    def test_regions(self):
        assert region_of(0x00000000) == P0
        assert region_of(0x40000000) == P1
        assert region_of(0x80000000) == S0

    def test_vpn_and_offset(self):
        va = make_va(P0, 5, 17)
        assert vpn_of(va) == 5
        assert offset_of(va) == 17

    def test_system_space_predicate(self):
        assert is_system_space(S0_BASE)
        assert not is_system_space(0x1000)

    @given(st.integers(0, 3), st.integers(0, (1 << 21) - 1),
           st.integers(0, 511))
    def test_make_va_roundtrip(self, region, vpn, offset):
        va = make_va(region, vpn, offset)
        assert region_of(va) == region
        assert vpn_of(va) == vpn
        assert offset_of(va) == offset


def build_translator(pages=16):
    mem = PhysicalMemory(1 << 20)
    s0 = RegionTable(base_pa=0x8000, length=pages)
    p0 = RegionTable(base_pa=0x9000, length=pages)
    p1 = RegionTable(base_pa=0xA000, length=pages)
    translator = Translator(mem, s0)
    translator.set_space(AddressSpace(asid=1, p0=p0, p1=p1))
    return mem, translator


class TestTranslator:
    def test_map_and_translate(self):
        _, tr = build_translator()
        tr.map_page(0x1000, pfn=7)
        pa = tr.translate(0x1000 + 0x23)
        assert pa == (7 << 9) | 0x23

    def test_unmapped_page_faults(self):
        _, tr = build_translator()
        tr.map_page(0x1000, pfn=7, valid=False)
        with pytest.raises(PageFault):
            tr.translate(0x1000)

    def test_out_of_table_raises(self):
        _, tr = build_translator(pages=2)
        with pytest.raises(TranslationNotMapped):
            tr.translate(0x10000)

    def test_s0_shared_across_spaces(self):
        mem, tr = build_translator()
        tr.map_page(S0_BASE, pfn=3)
        other = AddressSpace(asid=2, p0=RegionTable(0xB000, 4),
                             p1=RegionTable(0xC000, 4))
        tr.set_space(other)
        assert tr.translate(S0_BASE) == 3 << 9

    def test_set_valid_flip(self):
        _, tr = build_translator()
        tr.map_page(0x200, pfn=1, valid=False)
        tr.set_valid(0x200, True)
        assert tr.translate(0x200) == 1 << 9

    def test_pte_address_layout(self):
        _, tr = build_translator()
        assert tr.pte_address(0x0) == 0x9000
        assert tr.pte_address(0x200) == 0x9004  # second page of P0


class TestTranslationBuffer:
    def make(self):
        return TranslationBuffer(entries=128, ways=2)

    def test_geometry(self):
        tb = self.make()
        assert tb.sets == 32  # 128 entries / 2 halves / 2 ways

    def test_miss_then_hit(self):
        tb = self.make()
        assert tb.lookup(0x1000) is None
        tb.insert(0x1000, pfn=9)
        assert tb.lookup(0x1000) == 9
        assert tb.stats.misses == 1
        assert tb.stats.hits == 1

    def test_streams_counted(self):
        tb = self.make()
        tb.lookup(0x1000, stream="i")
        tb.lookup(0x2000, stream="d")
        assert tb.stats.i_misses == 1
        assert tb.stats.d_misses == 1

    def test_halves_do_not_conflict(self):
        tb = self.make()
        tb.insert(0x1000, pfn=1)
        tb.insert(S0_BASE | 0x1000, pfn=2)
        assert tb.lookup(0x1000) == 1
        assert tb.lookup(S0_BASE | 0x1000) == 2

    def test_process_half_flush(self):
        tb = self.make()
        tb.insert(0x1000, pfn=1)
        tb.insert(S0_BASE | 0x1000, pfn=2)
        tb.invalidate_process_half()
        assert not tb.probe(0x1000)
        assert tb.probe(S0_BASE | 0x1000)
        assert tb.stats.flushes == 1

    def test_invalidate_single(self):
        tb = self.make()
        tb.insert(0x1000, pfn=1)
        tb.invalidate_va(0x1000)
        assert not tb.probe(0x1000)

    def test_associativity(self):
        tb = self.make()
        stride = tb.sets << 9  # same set, different tag
        tb.insert(0x0, 1)
        tb.insert(stride, 2)
        assert tb.probe(0x0) and tb.probe(stride)
        tb.insert(2 * stride, 3)
        present = [tb.probe(i * stride) for i in range(3)]
        assert present.count(True) == 2

    @given(st.lists(st.integers(0, 0x3FFFFFFF), min_size=1, max_size=64))
    def test_insert_then_probe(self, vas):
        tb = self.make()
        for va in vas:
            tb.insert(va, pfn=va >> 9 & 0xFF)
            assert tb.probe(va)
