"""Workload generator tests: determinism, well-formedness, profiles."""

import pytest

from repro.arch.decode import decode_instruction
from repro.arch.opcodes import OPCODES_BY_VALUE
from repro.workloads.codegen import GeneratedProgram, ProgramGenerator
from repro.workloads.profiles import (COMMERCIAL, SCIENTIFIC,
                                      STANDARD_PROFILES,
                                      TIMESHARING_RESEARCH)


def generate(profile=TIMESHARING_RESEARCH, seed=4242):
    return ProgramGenerator(profile, seed=seed).generate()


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = generate(seed=99)
        b = generate(seed=99)
        assert a.code == b.code
        assert a.data_init == b.data_init
        assert a.string_init == b.string_init

    def test_different_seed_different_program(self):
        assert generate(seed=1).code != generate(seed=2).code

    def test_profiles_differ(self):
        a = generate(TIMESHARING_RESEARCH, seed=5)
        b = generate(SCIENTIFIC, seed=5)
        assert a.code != b.code


class TestWellFormedness:
    def test_entry_points_inside_code(self):
        prog = generate()
        for entry in prog.subroutine_entries:
            offset = entry - prog.code_base
            assert 0 <= offset < len(prog.code)

    def test_entry_masks_save_loop_registers(self):
        prog = generate()
        for entry in prog.subroutine_entries:
            offset = entry - prog.code_base
            mask = prog.code[offset] | (prog.code[offset + 1] << 8)
            # r6-r9 must be preserved by every generated subroutine.
            assert mask & 0x03C0 == 0x03C0

    def test_main_decodes_from_entry(self):
        prog = generate()

        def fetch(addr):
            return prog.code[addr - prog.code_base]

        addr = prog.entry
        for _ in range(20):
            inst = decode_instruction(fetch, addr)
            addr = inst.next_pc
            assert inst.info.value in OPCODES_BY_VALUE

    def test_subroutine_bodies_decode(self):
        prog = generate()

        def fetch(addr):
            return prog.code[addr - prog.code_base]

        for entry in prog.subroutine_entries[:5]:
            addr = entry + 2  # skip the entry mask word
            for _ in range(10):
                inst = decode_instruction(fetch, addr)
                addr = inst.next_pc

    def test_data_regions_sized_to_profile(self):
        prog = generate()
        assert len(prog.data_init) == TIMESHARING_RESEARCH.data_kb * 1024
        assert len(prog.string_init) == \
            TIMESHARING_RESEARCH.string_kb * 1024

    def test_pointer_table_points_into_region(self):
        gen = ProgramGenerator(TIMESHARING_RESEARCH, seed=7)
        prog = gen.generate()
        import struct
        for i in range(16):
            offset = gen._ptr_table + 4 * i
            target = struct.unpack_from("<I", prog.data_init, offset)[0]
            assert prog.data_base <= target < \
                prog.data_base + len(prog.data_init)

    def test_queue_heads_self_referential(self):
        gen = ProgramGenerator(TIMESHARING_RESEARCH, seed=7)
        prog = gen.generate()
        import struct
        head_va = prog.data_base + gen._queue_area
        flink = struct.unpack_from("<I", prog.data_init, gen._queue_area)[0]
        assert flink == head_va

    def test_decimal_area_valid_bcd(self):
        from repro.workloads.codegen import (DECIMAL_AREA_OFFSET,
                                             DECIMAL_SLOT_BYTES)
        prog = generate(COMMERCIAL)
        digits = COMMERCIAL.decimal_digits
        nbytes = digits // 2 + 1
        for slot in range(8):
            base = DECIMAL_AREA_OFFSET + slot * DECIMAL_SLOT_BYTES
            packed = prog.string_init[base:base + nbytes]
            for i, byte in enumerate(packed):
                high, low = byte >> 4, byte & 0xF
                assert high <= 9
                if i < nbytes - 1:
                    assert low <= 9
                else:
                    assert low in (0xC, 0xD)  # sign nibble


class TestProfiles:
    def test_five_standard_profiles(self):
        assert len(STANDARD_PROFILES) == 5
        names = {p.name for p in STANDARD_PROFILES}
        assert len(names) == 5

    def test_commercial_is_decimal_heavy(self):
        base = TIMESHARING_RESEARCH
        assert COMMERCIAL.decimal_ops > base.decimal_ops

    def test_scientific_is_float_heavy(self):
        assert SCIENTIFIC.float_ops > TIMESHARING_RESEARCH.float_ops

    def test_profiles_are_frozen(self):
        with pytest.raises(Exception):
            TIMESHARING_RESEARCH.move = 1.0

    @pytest.mark.parametrize("profile", STANDARD_PROFILES,
                             ids=lambda p: p.name)
    def test_every_profile_generates(self, profile):
        prog = ProgramGenerator(profile, seed=11).generate()
        assert isinstance(prog, GeneratedProgram)
        assert len(prog.code) > 4096
