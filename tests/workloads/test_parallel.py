"""Fault tolerance of the generic task fan-out.

A worker crash must not cost the caller the work that already
completed: failed tasks get a bounded number of pool retries and then
run in-process, and a pool that dies outright (a worker killed
mid-task) degrades to serial execution of the stragglers.
"""

import os

import pytest

from repro.workloads.parallel import default_jobs, run_tasks

#: The test process; pool workers are forked children with other pids.
PARENT_PID = os.getpid()


def _square(task):
    return task * task


def _poisoned(task):
    """Raises in pool workers, succeeds in the parent process."""
    if task == "poison" and os.getpid() != PARENT_PID:
        raise RuntimeError("injected worker failure")
    return ("ok", task, os.getpid() == PARENT_PID)


def _worker_killer(task):
    """Kills the hosting worker process outright (breaks the pool)."""
    if task == "bomb" and os.getpid() != PARENT_PID:
        os._exit(17)
    return ("ok", task, os.getpid() == PARENT_PID)


def _always_fails(task):
    raise ValueError(f"task {task} is unrunnable")


class TestRunTasks:
    def test_serial_path(self):
        assert run_tasks(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_pool_path_preserves_order(self):
        assert run_tasks(_square, [3, 1, 2], jobs=2) == [9, 1, 4]

    def test_poisoned_task_falls_back_in_process(self):
        results = run_tasks(_poisoned, ["a", "poison", "b"], jobs=2)
        assert [r[1] for r in results] == ["a", "poison", "b"]
        # The poisoned task ultimately ran in the parent process...
        assert results[1][2] is True
        # ...and completed work from healthy tasks was not lost.
        assert results[0][0] == results[2][0] == "ok"

    def test_killed_worker_does_not_lose_completed_work(self):
        tasks = ["a", "b", "bomb", "c", "d"]
        results = run_tasks(_worker_killer, tasks, jobs=2)
        assert [r[1] for r in results] == tasks
        assert results[2][2] is True, \
            "the pool-killing task must have run in-process"

    def test_permanent_failure_propagates(self):
        with pytest.raises(ValueError, match="unrunnable"):
            run_tasks(_always_fails, [1, 2], jobs=2, retries=0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1
