"""The workload registry: the front door every layer resolves through.

The contracts the rest of the stack leans on: the paper's five come
first and resolve to the *same* profile objects as
``STANDARD_PROFILES`` (so registry resolution is bit-identical to
direct construction), the zoo brings the count to at least twelve,
unknown names fail with the full roster, suffix matching is
deterministic and paper-first, and registration rules keep generator
workloads permanent while traces come and go.
"""

import pytest

from repro.workloads import engine
from repro.workloads.profiles import STANDARD_PROFILES
from repro.workloads.registry import (DEFAULT_WORKLOAD, WORKLOADS,
                                      WorkloadError, WorkloadSpec,
                                      find_workload, get_workload,
                                      paper_workload_names,
                                      paper_workloads, register,
                                      unregister, validate_workload,
                                      workload_names)


class TestRoster:
    def test_at_least_twelve_workloads(self):
        assert len(WORKLOADS) >= 12

    def test_paper_five_come_first_in_order(self):
        names = workload_names()
        assert names[:5] == tuple(p.name for p in STANDARD_PROFILES)
        assert paper_workload_names() == names[:5]

    def test_paper_specs_hold_the_standard_profile_objects(self):
        for spec, profile in zip(paper_workloads(), STANDARD_PROFILES):
            assert spec.profile is profile
            assert spec.paper and spec.kind == "paper"

    def test_default_is_the_papers_first_workload(self):
        assert DEFAULT_WORKLOAD == STANDARD_PROFILES[0].name
        assert validate_workload(None) == DEFAULT_WORKLOAD

    def test_zoo_specs_are_generator_kind(self):
        zoo = [spec for spec in WORKLOADS.values() if not spec.paper]
        assert len(zoo) >= 7
        assert all(spec.kind == "generator" for spec in zoo)


class TestResolution:
    def test_get_workload_by_exact_name(self):
        for name in workload_names():
            assert get_workload(name).name == name

    def test_unknown_name_lists_the_roster(self):
        with pytest.raises(WorkloadError) as err:
            get_workload("nope")
        message = str(err.value)
        for name in workload_names():
            assert name in message

    def test_find_workload_suffix_match(self):
        assert find_workload("research").name == "timesharing-research"
        assert find_workload("educational").name == "rte-educational"

    def test_find_workload_passes_specs_through(self):
        spec = get_workload("rte-commercial")
        assert find_workload(spec) is spec

    def test_registry_resolution_is_bit_identical_to_direct(self):
        """The acceptance pin: running by name equals running the
        profile object directly, cycle for cycle."""
        from repro.analysis.measurement import Measurement
        from repro.cpu.machine import VAX780
        from repro.osim.executive import Executive

        for profile in STANDARD_PROFILES[:2]:
            machine = VAX780()
            executive = Executive(machine, profile, seed=1984)
            executive.boot()
            executive.run(1500)
            direct = Measurement.capture(profile.name, machine)
            via_registry = engine.run_workload(profile.name, 1500,
                                               seed=1984)
            assert via_registry.cycles == direct.cycles
            assert via_registry.histogram.nonstalled == \
                direct.histogram.nonstalled
            assert via_registry.histogram.stalled == \
                direct.histogram.stalled


class TestMachineSupport:
    def test_paper_five_run_everywhere(self):
        from repro.machines import MACHINES

        for spec in paper_workloads():
            for machine in MACHINES:
                assert spec.supported_on(machine)

    def test_transaction_decimal_refused_on_the_subset_machine(self):
        spec = get_workload("transaction-decimal")
        assert not spec.supported_on("uvax78032")
        with pytest.raises(WorkloadError) as err:
            spec.check_machine("uvax78032")
        assert "ADDP" in str(err.value)

    def test_refused_families_name_the_gap(self):
        spec = get_workload("transaction-decimal")
        refused = spec.refused_families("uvax78032")
        assert set(refused) <= set(spec.requires_families)
        assert refused


class TestRegistrationRules:
    def test_duplicate_name_needs_replace(self):
        spec = get_workload("cache-thrash")
        clone = WorkloadSpec(name=spec.name, description="dup",
                             generator=spec.generator,
                             profile=spec.profile)
        with pytest.raises(WorkloadError):
            register(clone)

    def test_generator_workloads_are_permanent(self):
        with pytest.raises(WorkloadError):
            unregister("cache-thrash")
        assert "cache-thrash" in WORKLOADS

    def test_unregister_unknown_name_errors(self):
        with pytest.raises(WorkloadError):
            unregister("never-registered")
