"""RTE scripted-user pacing tests."""

import random

from repro.cpu.machine import SCB_TERMINAL, VAX780
from repro.osim.executive import Executive
from repro.workloads.profiles import MixProfile
from repro.workloads.rte import ScriptedTerminalMux, ScriptedUser


class TestScriptedUser:
    def test_phases_cycle(self):
        user = ScriptedUser(random.Random(1), base_period=1000)
        phases = set()
        for _ in range(2000):
            user.next_arrival_gap()
            phases.add(user.phase)
        assert phases == {"think", "type", "output"}

    def test_gaps_positive(self):
        user = ScriptedUser(random.Random(2), base_period=1000)
        for _ in range(500):
            assert user.next_arrival_gap() > 0

    def test_output_bursts_are_faster(self):
        user = ScriptedUser(random.Random(3), base_period=1000)
        gaps = {"type": [], "output": []}
        for _ in range(5000):
            phase = user.phase
            gap = user.next_arrival_gap()
            if phase in gaps:
                gaps[phase].append(gap)
        mean_type = sum(gaps["type"]) / len(gaps["type"])
        mean_output = sum(gaps["output"]) / len(gaps["output"])
        assert mean_output < mean_type


class TestScriptedTerminalMux:
    def test_posts_interrupts(self):
        machine = VAX780()
        mux = ScriptedTerminalMux(users=8, base_period_cycles=500,
                                  scb_offset=SCB_TERMINAL)
        machine.ebox.now = 10 ** 9  # everything due
        mux.poll(machine)
        assert mux.characters == 1
        assert machine._hw_pending

    def test_does_not_double_post(self):
        machine = VAX780()
        mux = ScriptedTerminalMux(users=4, base_period_cycles=500,
                                  scb_offset=SCB_TERMINAL)
        machine.ebox.now = 10 ** 9
        mux.poll(machine)
        mux.poll(machine)  # line still asserted
        assert mux.characters == 1

    def test_more_users_more_traffic(self):
        def chars(users):
            machine = VAX780()
            mux = ScriptedTerminalMux(users=users,
                                      base_period_cycles=8000,
                                      scb_offset=SCB_TERMINAL, seed=5)
            for now in range(0, 4_000_000, 250):
                machine.ebox.now = now
                machine._hw_pending.clear()  # auto-acknowledge
                mux.poll(machine)
            return mux.characters

        assert chars(32) > chars(2)

    def test_drop_in_for_executive(self):
        profile = MixProfile(name="rte-test", description="t",
                             processes=2)
        machine = VAX780()
        executive = Executive(machine, profile, seed=6)
        # Swap the Poisson mux for the scripted one.
        machine.devices.remove(executive.terminal)
        scripted = ScriptedTerminalMux(users=16, base_period_cycles=3000,
                                       scb_offset=SCB_TERMINAL, seed=6)
        machine.devices.append(scripted)
        executive.boot()
        executive.run(4000)
        assert scripted.characters > 0
        assert machine.tracer.interrupts > 0
