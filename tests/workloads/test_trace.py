"""Trace record/replay: bit-identical round trips, hostile files
rejected with errors that say what is wrong.

A trace is only useful if replaying it reproduces the recording
exactly — same cycles, same histogram — and if a damaged file fails
loudly instead of replaying something subtly different.  Both halves
are pinned here, plus the integration contract: a registered trace is
a first-class workload, runnable through the engine and the api
facade under its own name.
"""

import pytest

from repro import api
from repro.workloads import engine
from repro.workloads.registry import (WORKLOADS, WorkloadError,
                                      get_workload, unregister)
from repro.workloads.trace import (TraceError, load_trace, record_trace,
                                   register_trace, replay)

BUDGET = 1200
SEED = 7


@pytest.fixture()
def recorded(tmp_path):
    """One recorded trace; unregistered afterwards if a test registered
    it (the registry is process-global)."""
    path = tmp_path / "research.rprt"
    handle, measurement = record_trace("timesharing-research", path,
                                       instructions=BUDGET, seed=SEED)
    yield path, handle, measurement
    for name in [n for n, s in WORKLOADS.items() if s.trace is not None]:
        unregister(name)


class TestRoundTrip:
    def test_recording_is_bit_identical_to_an_unobserved_run(self,
                                                             recorded):
        _, _, measurement = recorded
        plain = engine.run_workload("timesharing-research", BUDGET,
                                    seed=SEED)
        assert measurement.cycles == plain.cycles
        assert measurement.histogram.nonstalled == \
            plain.histogram.nonstalled
        assert measurement.histogram.stalled == plain.histogram.stalled

    def test_replay_matches_the_recording_exactly(self, recorded):
        path, handle, measurement = recorded
        loaded = load_trace(path)
        assert loaded.file_sha256 == handle.file_sha256
        replayed = replay(loaded)
        assert replayed.cycles == measurement.cycles
        assert replayed.histogram.nonstalled == \
            measurement.histogram.nonstalled
        assert replayed.histogram.stalled == \
            measurement.histogram.stalled

    def test_header_self_description(self, recorded):
        path, handle, _ = recorded
        loaded = load_trace(path)
        assert loaded.source == "timesharing-research"
        assert loaded.machine == "vax780"
        assert loaded.seed == SEED
        assert loaded.instructions == BUDGET
        assert loaded.events > 0


class TestRegisteredTrace:
    def test_trace_registers_as_a_runnable_workload(self, recorded):
        path, _, measurement = recorded
        spec = register_trace(path)
        assert spec.name in WORKLOADS
        assert spec.kind == "trace"
        rerun = engine.run_workload(spec.name, BUDGET, seed=SEED)
        assert rerun.cycles == measurement.cycles

    def test_registration_is_idempotent_by_digest(self, recorded):
        path, _, _ = recorded
        first = register_trace(path)
        assert register_trace(path) is first

    def test_trace_runs_through_the_api_facade(self, recorded):
        path, _, measurement = recorded
        spec = register_trace(path)
        result = api.run_workload(spec.name, seed=SEED)
        assert result.cycles == measurement.cycles

    def test_budget_mismatch_is_an_error_not_a_guess(self, recorded):
        path, _, _ = recorded
        spec = register_trace(path)
        with pytest.raises(WorkloadError) as err:
            engine.run_workload(spec.name, BUDGET * 2, seed=SEED)
        assert str(BUDGET) in str(err.value)

    def test_trace_only_runs_on_its_recorded_machine(self, recorded):
        path, _, _ = recorded
        spec = register_trace(path)
        assert not spec.supported_on("uvax78032")
        with pytest.raises(WorkloadError):
            engine.run_workload(spec.name, BUDGET, seed=SEED,
                                machine="uvax78032")


class TestHostileFiles:
    def test_truncated_file_is_rejected(self, recorded):
        path, _, _ = recorded
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(TraceError):
            load_trace(path)

    def test_bad_magic_is_rejected(self, recorded):
        path, _, _ = recorded
        data = path.read_bytes()
        path.write_bytes(b"XXXX" + data[4:])
        with pytest.raises(TraceError) as err:
            load_trace(path)
        assert "magic" in str(err.value).lower()

    def test_unknown_version_is_rejected(self, recorded):
        path, _, _ = recorded
        data = bytearray(path.read_bytes())
        data[4] = 0xFF  # version field follows the 4-byte magic
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError) as err:
            load_trace(path)
        assert "version" in str(err.value).lower()

    def test_flipped_payload_bit_is_rejected(self, recorded):
        path, _, _ = recorded
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_empty_file_is_rejected(self, tmp_path):
        path = tmp_path / "empty.rprt"
        path.write_bytes(b"")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_garbage_is_rejected(self, tmp_path):
        path = tmp_path / "garbage.rprt"
        path.write_bytes(b"\x00" * 256)
        with pytest.raises(TraceError):
            load_trace(path)


class TestApiRecordTrace:
    def test_api_record_trace_registers_and_reports(self, tmp_path):
        path = tmp_path / "api.rprt"
        try:
            result = api.record_trace("rte-educational", path=str(path),
                                      smoke=True, seed=SEED)
            assert result.registered
            assert result.source == "rte-educational"
            assert get_workload(result.workload).kind == "trace"
            doc = result.to_json()
            assert doc["file_sha256"] == result.file_sha256
        finally:
            for name in [n for n, s in WORKLOADS.items()
                         if s.trace is not None]:
                unregister(name)
