"""Every zoo workload obeys the cycle-conservation laws on every
machine that accepts it — and the one that needs the decimal executors
is refused, not silently adapted, where they are missing.

The laws (:mod:`repro.validate.invariants`) are the repo's strongest
correctness net: a generator that emitted impossible instruction
sequences, leaked cycles, or double-counted stalls fails them
immediately.  Running each new generator through the full checker on
both backends is what makes the zoo trustworthy rather than merely
plausible.
"""

import pytest

from repro.machines import MACHINES
from repro.validate import check_measurement
from repro.workloads import engine
from repro.workloads.registry import (WORKLOADS, WorkloadError,
                                      get_workload)
from repro.workloads.zoo import ZOO_PROFILES

ZOO_NAMES = tuple(p.name for p in ZOO_PROFILES)

#: (workload, machine) pairs the registry claims are runnable.
SUPPORTED = [(name, machine)
             for name in ZOO_NAMES
             for machine in MACHINES
             if get_workload(name).supported_on(machine)]


class TestZooRoster:
    def test_at_least_seven_new_generators(self):
        assert len(ZOO_PROFILES) >= 7

    def test_all_registered(self):
        for name in ZOO_NAMES:
            assert name in WORKLOADS

    def test_distinct_names_and_no_paper_collisions(self):
        assert len(set(ZOO_NAMES)) == len(ZOO_NAMES)
        from repro.workloads.profiles import STANDARD_PROFILES

        assert not set(ZOO_NAMES) & {p.name for p in STANDARD_PROFILES}


class TestConservationLaws:
    @pytest.mark.parametrize("name,machine", SUPPORTED,
                             ids=[f"{n}-{m}" for n, m in SUPPORTED])
    def test_all_laws_hold(self, name, machine):
        measurement = engine.run_workload(name, 2000, seed=1984,
                                          machine=machine)
        report = check_measurement(measurement, machine=machine)
        report.raise_on_failure()
        assert len(report.checks) >= 24

    def test_every_zoo_workload_runs_on_the_default_machine(self):
        supported_on_780 = {name for name, machine in SUPPORTED
                            if machine == "vax780"}
        assert supported_on_780 == set(ZOO_NAMES)


class TestSubsetRefusal:
    def test_transaction_decimal_refused_cleanly_on_uvax(self):
        with pytest.raises(WorkloadError) as err:
            engine.run_workload("transaction-decimal", 2000,
                                machine="uvax78032")
        message = str(err.value)
        assert "transaction-decimal" in message
        assert "uvax78032" in message

    def test_refusal_happens_before_any_simulation(self):
        from repro.obs import metrics

        before = metrics.counter("workloads.runs").value
        with pytest.raises(WorkloadError):
            engine.run_workload("transaction-decimal", 2000,
                                machine="uvax78032")
        assert metrics.counter("workloads.runs").value == before
