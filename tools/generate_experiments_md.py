#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from a benchmark-scale composite run."""

import sys
import time

from repro.analysis import (section4, table1, table2, table3, table4,
                            table5, table6, table7, table8, table9)
from repro.arch.groups import GROUP_ORDER
from repro.report import paper
from repro.ucode.rows import COLUMN_ORDER, ROW_ORDER
from repro.workloads.engine import standard_composite

N = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000

start = time.time()
comp = standard_composite(instructions=N)
elapsed = time.time() - start

t1, t2, t3 = table1(comp), table2(comp), table3(comp)
t4, t5, t6 = table4(comp), table5(comp), table6(comp)
t7, t8, t9 = table7(comp), table8(comp), table9(comp)
s4 = section4(comp)

out = []
w = out.append

w("# EXPERIMENTS — paper vs. measured\n")
w("Reproduction of Emer & Clark, *A Characterization of Processor "
  "Performance in the VAX-11/780* (ISCA 1984).\n")
w(f"All numbers below are from the five-workload composite "
  f"({N} measured instructions per workload, seed 1984, "
  f"{comp.tracer.instructions} composite instructions, simulated in "
  f"{elapsed:.0f}s).  Regenerate with "
  f"`python tools/generate_experiments_md.py {N}` or run "
  f"`pytest benchmarks/ --benchmark-only -s`.\n")
w("**Reading the numbers.** These are *shape* reproductions (see "
  "DESIGN.md): the workloads are synthetic stand-ins for 1984 "
  "timesharing populations and the runs are ~10^5 instructions, not "
  "hours; orderings, ratios and magnitudes are the reproduction "
  "targets, not digits.  Known gaps are called out inline.\n")

w("\n## Table 1 — opcode group frequency (percent)\n")
w("| Group | paper | measured |")
w("|---|---|---|")
for g in GROUP_ORDER:
    w(f"| {g.value} | {paper.TABLE1_FREQUENCY[g.value]:.2f} | "
      f"{t1.frequency_percent[g]:.2f} |")
w("\nSimple dominates, Character/Decimal are rare, ordering matches.\n")

w("\n## Table 2 — PC-changing instructions\n")
w("| Type | paper %instr | measured | paper %taken | measured |")
w("|---|---|---|---|---|")
for row in t2.rows:
    ref = paper.TABLE2[row.label]
    w(f"| {row.label} | {ref[0]:.1f} | "
      f"{row.percent_of_instructions:.1f} | {ref[1]:.0f} | "
      f"{row.percent_taken:.0f} |")
w(f"| **TOTAL** | **{paper.TABLE2_TOTAL[0]}** | "
  f"**{t2.total_percent:.1f}** | **{paper.TABLE2_TOTAL[1]}** | "
  f"**{t2.total_taken_percent:.0f}** |")
w("\nGap: our synthetic conditional-branch density runs below the "
  "paper's 19.3% (compiled 1984 code was branchier than the generator's "
  "default blocks), so the PC-changing total lands below 38.5%.  "
  "Always-taken classes are exactly 100% as in the paper.\n")

w("\n## Table 3 — specifiers per average instruction\n")
w("| Quantity | paper | measured |")
w("|---|---|---|")
w(f"| First specifiers | {paper.TABLE3['first_specifiers']} | "
  f"{t3.first_specifiers:.3f} |")
w(f"| Other specifiers | {paper.TABLE3['other_specifiers']} | "
  f"{t3.other_specifiers:.3f} |")
w(f"| Branch displacements | {paper.TABLE3['branch_displacements']} | "
  f"{t3.branch_displacements:.3f} |")

w("\n## Table 4 — operand specifier distribution (percent of total)\n")
w("| Mode | paper (spec1/spec2-6/total) | measured |")
w("|---|---|---|")
for mode, ref in paper.TABLE4.items():
    refs = "/".join("-" if v is None else f"{v:.1f}" for v in ref)
    w(f"| {mode} | {refs} | {t4.spec1_percent[mode]:.1f}/"
      f"{t4.spec26_percent[mode]:.1f}/{t4.total_percent[mode]:.1f} |")
w(f"| Percent indexed | {paper.TABLE4_INDEXED_PERCENT} | "
  f"{t4.indexed_percent:.1f} |")
w("\nRegister is the most common mode, register is commoner after the "
  "first specifier, displacement is the dominant memory mode, short "
  "literals far outnumber immediates — all as in §3.2.  (Several paper "
  "cells are illegible in the archival scan; see `repro.report.paper`.)\n")

w("\n## Table 5 — D-stream reads/writes per average instruction\n")
w("| Source | measured reads | measured writes |")
w("|---|---|---|")
for label, (r, wr) in t5.rows.items():
    w(f"| {label} | {r:.3f} | {wr:.3f} |")
w(f"| **TOTAL** | **{t5.total_reads:.3f}** (paper "
  f"{paper.TABLE5_TOTAL_READS}) | **{t5.total_writes:.3f}** (paper "
  f"{paper.TABLE5_TOTAL_WRITES}) |")
w("\nReads:writes ≈ 2:1 and CALL/RET is the biggest execute-row "
  "contributor to both, the paper's two headline observations.\n")

w("\n## Table 6 — estimated size of the average instruction\n")
w("| Quantity | paper | measured |")
w("|---|---|---|")
w(f"| Specifiers/instruction | "
  f"{paper.TABLE6['specifiers_per_instruction']} | "
  f"{t6.specifiers_per_instruction:.2f} |")
w(f"| Avg specifier size (bytes) | {paper.TABLE6['avg_specifier_size']} "
  f"| {t6.avg_specifier_size:.2f} |")
w(f"| Branch disp bytes/instruction | "
  f"{paper.TABLE6['branch_disp_per_instruction']} | "
  f"{t6.branch_disp_bytes_per_instruction:.2f} |")
w(f"| **Total bytes** | **{paper.TABLE6['total_bytes']}** | "
  f"**{t6.total_bytes:.2f}** |")

w("\n## Table 7 — interrupt and context-switch headway (instructions)\n")
w("| Event | paper | measured |")
w("|---|---|---|")
w(f"| Software interrupt requests | "
  f"{paper.TABLE7['software_interrupt_requests']} | "
  f"{t7.software_interrupt_request_headway:.0f} |")
w(f"| HW and SW interrupts | {paper.TABLE7['interrupts']} | "
  f"{t7.interrupt_headway:.0f} |")
w(f"| Context switches | {paper.TABLE7['context_switches']} | "
  f"{t7.context_switch_headway:.0f} |")

w("\n## Table 8 — cycles per average instruction\n")
w("| Row | paper total | measured total |")
w("|---|---|---|")
for row in ROW_ORDER:
    ref = paper.TABLE8_ROW_TOTALS.get(row.value)
    refs = f"{ref:.3f}" if ref is not None else "(illegible)"
    w(f"| {row.value} | {refs} | {t8.row_totals[row]:.3f} |")
w(f"| **TOTAL (CPI)** | **{paper.CYCLES_PER_INSTRUCTION}** | "
  f"**{t8.cycles_per_instruction:.3f}** |")
w("\n| Column | paper | measured |")
w("|---|---|---|")
for col in COLUMN_ORDER:
    w(f"| {col.value} | {paper.TABLE8_COLUMN_TOTALS[col.value]:.3f} | "
      f"{t8.column_totals[col]:.3f} |")
w("\nShape highlights that hold: Decode compute is exactly 1.000 "
  "cycle/instruction; decode + specifier processing is the largest "
  "block; CALL/RET is the heaviest execute row; compute dominates the "
  "columns with IB-stall ≈ 0.7.  Known gap: our CPI runs ~25-35% below "
  "10.59, almost entirely missing R-stall (our synthetic working sets "
  "are cache-friendlier than live 1984 timesharing; see the cache-miss "
  "note under §4 below).\n")

w("\n## Table 9 — cycles per instruction within each group\n")
w("| Group | paper | measured |")
w("|---|---|---|")
for g in GROUP_ORDER:
    w(f"| {g.value} | {paper.TABLE9_TOTALS[g.value]:.2f} | "
      f"{t9.totals[g]:.2f} |")
w("\nThe two-orders-of-magnitude spread (Simple ≈ 1 cycle to "
  "Character/Decimal ≈ 100+) reproduces, with the paper's ordering.\n")

w("\n## Section 4 — implementation events\n")
w("| Event | paper | measured |")
w("|---|---|---|")
ref = paper.SECTION4
rows = [
    ("IB references / instruction", "ib_references_per_instruction",
     s4.ib_references_per_instruction),
    ("IB bytes / reference", "ib_bytes_per_reference",
     s4.ib_bytes_per_reference),
    ("Average instruction bytes", "avg_instruction_bytes",
     s4.avg_instruction_bytes),
    ("Cache read misses / instr", "cache_read_misses_per_instruction",
     s4.cache_read_misses_per_instruction),
    ("— I-stream", "cache_i_misses_per_instruction",
     s4.cache_i_misses_per_instruction),
    ("— D-stream", "cache_d_misses_per_instruction",
     s4.cache_d_misses_per_instruction),
    ("TB misses / instruction", "tb_misses_per_instruction",
     s4.tb_misses_per_instruction),
    ("— D-stream", "tb_d_misses_per_instruction",
     s4.tb_d_misses_per_instruction),
    ("— I-stream", "tb_i_misses_per_instruction",
     s4.tb_i_misses_per_instruction),
    ("TB service cycles", "tb_service_cycles", s4.tb_service_cycles),
    ("— of which read stall", "tb_service_stall_cycles",
     s4.tb_service_stall_cycles),
    ("Unaligned refs / instruction", "unaligned_refs_per_instruction",
     s4.unaligned_refs_per_instruction),
]
for label, key, measured in rows:
    w(f"| {label} | {ref[key]} | {measured:.3f} |")
w("\nKnown gaps, and why: the paper's cache/TB miss rates come from "
  "hour-long live timesharing with dozens of processes, real compilers "
  "and editors walking megabytes of code and data.  Our synthetic "
  "programs reproduce the *mechanisms* (capacity misses, context-switch "
  "flush refill, streaming scans) and the right orders of magnitude, "
  "but their loops are inevitably more cache/TB-friendly.  The "
  "sensitivity example (`examples/tb_cache_sensitivity.py`) shows the "
  "model responds to geometry exactly as expected, and short cold-start "
  "windows reach the paper's 0.28 misses/instruction.  The IB "
  "bytes/reference gap (3.0 vs 1.7) has the same root: with fewer "
  "I-stream stalls the IB stays fuller and accepts bigger chunks.\n")

w("\n## Figure 1 — block diagram\n")
w("Rendered from the live machine topology by "
  "`repro.report.render_figure1`; verified structurally by "
  "`benchmarks/test_bench_figure1_and_section4.py` (all components and "
  "connections of the paper's figure present).\n")

w("\n## Paper-data legibility notes\n")
w("The archival scan of the paper is partially illegible inside Tables "
  "4, 5, 8 and 9.  `repro.report.paper` transcribes every legible cell "
  "plus all row/column totals (which are stated in clean body text), "
  "marks unreadable cells as `None`, and cross-checks internal "
  "consistency in `tests/report/test_report.py` (e.g. Table 9 means x "
  "Table 1 frequencies reproduce Table 8's row totals to ±0.03).\n")

with open("EXPERIMENTS.md", "w") as f:
    f.write("\n".join(out) + "\n")
print("wrote EXPERIMENTS.md")
