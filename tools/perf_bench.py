#!/usr/bin/env python
"""End-to-end simulator performance benchmark.

Times the five-workload standard composite (construction + run +
capture, nothing cached) plus the fixed microbenchmark smoke sweep, and
writes/updates ``BENCH_perf.json`` with instructions/second and
cycles/second.  The composite's counted cycles
are recorded alongside so a perf number can never silently ride on a
timing-model change: two entries are comparable only if their
``composite_cycles`` match.

Usage:
    python tools/perf_bench.py                    # measure, print
    python tools/perf_bench.py --output BENCH_perf.json --label after
    REPRO_SRC=/path/to/other/src python tools/perf_bench.py --label before

``REPRO_SRC`` points the measurement at another source tree (e.g. a git
worktree of the baseline commit) so before/after are produced by the
same protocol on the same host, back to back.

The JSON accumulates one entry per label plus ``speedup`` (the
composite before/after ratio), ``speedups`` (per-section ratios,
> 1 = faster) and ``batch`` (the paired scalar-vs-batch sweep timing
from the lockstep batch engine) computed when present.
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.environ.get("REPRO_SRC", os.path.join(REPO, "src")))


def measure(instructions: int, seed: int, jobs: int, repeats: int) -> dict:
    from repro.workloads import engine

    runs = []
    cycles = None
    for _ in range(repeats):
        engine.clear_cache()
        kwargs = {"jobs": jobs} if jobs != 1 else {}
        t0 = time.perf_counter()
        meas = engine.standard_composite(instructions=instructions,
                                              seed=seed, **kwargs)
        elapsed = time.perf_counter() - t0
        runs.append(round(elapsed, 3))
        if cycles is None:
            cycles = meas.cycles
        elif cycles != meas.cycles:
            raise SystemExit(f"non-deterministic cycle count: "
                             f"{cycles} vs {meas.cycles}")
    best = min(runs)
    total_instructions = instructions * 5
    return {
        "instructions_per_workload": instructions,
        "total_instructions": total_instructions,
        "seed": seed,
        "jobs": jobs,
        "composite_cycles": cycles,
        "wall_seconds": runs,
        "best_seconds": best,
        "instructions_per_second": round(total_instructions / best, 1),
        "cycles_per_second": round(cycles / best, 1),
        "python": platform.python_version(),
        "source": _source_id(),
        "ubench": measure_ubench(repeats),
        "explore": measure_explore(repeats),
        "obs": measure_obs(instructions, seed, repeats),
        "batch": measure_batch(repeats),
        "serve": measure_serve(repeats),
        "analytical": measure_analytical(repeats),
    }


def measure_ubench(repeats: int) -> dict:
    """Time the fixed microbenchmark smoke sweep (serial, no pool).

    Like ``composite_cycles`` above, the sweep's summed cycle count is
    recorded so before/after entries are only comparable when the
    kernels counted the same work.
    """
    from repro.ubench import runner, suite

    runs = []
    total_cycles = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        results = runner.run_suite(suite.SMOKE_SUITE, jobs=1)
        elapsed = time.perf_counter() - t0
        runs.append(round(elapsed, 3))
        cycles = sum(r["total_cycles"] for r in results)
        if total_cycles is None:
            total_cycles = cycles
        elif total_cycles != cycles:
            raise SystemExit(f"non-deterministic ubench cycles: "
                             f"{total_cycles} vs {cycles}")
    best = min(runs)
    return {
        "kernels": len(suite.SMOKE_SUITE),
        "sweep_cycles": total_cycles,
        "wall_seconds": runs,
        "best_seconds": best,
        "kernels_per_second": round(len(suite.SMOKE_SUITE) / best, 2),
    }


def measure_explore(repeats: int) -> dict:
    """Time the smoke design-space sweep, cold store vs. warm store.

    Cold measures simulation + store writes; warm measures pure store
    reads and must perform zero new simulations.  The summed composite
    cycles across all points are recorded for the usual comparability
    check.
    """
    import shutil
    import tempfile

    from repro.explore import SMOKE, ResultStore, run_sweep

    cold_runs, warm_runs = [], []
    sweep_cycles = None
    stats = None
    for _ in range(repeats):
        root = tempfile.mkdtemp(prefix="explore-bench-")
        try:
            store = ResultStore(root)
            t0 = time.perf_counter()
            cold = run_sweep(SMOKE, store=store, jobs=1)
            cold_runs.append(round(time.perf_counter() - t0, 3))
            # Warm reads complete in low milliseconds — far below the
            # resolution ``round(perf_counter(), 3)`` kept — so the
            # warm side is timed on the nanosecond clock.
            t0 = time.perf_counter_ns()
            warm = run_sweep(SMOKE, store=store, jobs=1)
            warm_runs.append(time.perf_counter_ns() - t0)
            if warm.stats["simulated"]:
                raise SystemExit(
                    f"warm sweep re-simulated "
                    f"{warm.stats['simulated']} tasks")
            cycles = sum(entry["composite"]["cycles"]
                         for entry in cold.points)
            if sweep_cycles is None:
                sweep_cycles = cycles
                stats = cold.stats
            elif sweep_cycles != cycles:
                raise SystemExit(f"non-deterministic explore cycles: "
                                 f"{sweep_cycles} vs {cycles}")
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return {
        "spec": SMOKE.name,
        "points": stats["points"],
        "tasks": stats["tasks"],
        "sweep_cycles": sweep_cycles,
        "cold_seconds": cold_runs,
        "best_cold_seconds": min(cold_runs),
        "warm_nanoseconds": warm_runs,
        "best_warm_nanoseconds": min(warm_runs),
        "best_warm_seconds": round(min(warm_runs) / 1e9, 6),
    }


def measure_obs(instructions: int, seed: int, repeats: int) -> dict:
    """Pair the composite with and without an active observation.

    The observability layer contracts to be passive: counted cycles must
    be bit-identical and the wall-clock overhead small (the adaptive
    progress sampler backs off until it is).  Each repeat times the two
    variants back to back on a cold memo cache; the overhead fraction is
    best-observed over best-plain minus one.
    """
    import shutil
    import tempfile

    from repro import obs
    from repro.workloads import engine

    plain_runs, observed_runs = [], []
    for _ in range(repeats):
        engine.clear_cache()
        t0 = time.perf_counter()
        plain = engine.standard_composite(instructions=instructions,
                                          seed=seed)
        plain_runs.append(round(time.perf_counter() - t0, 3))

        engine.clear_cache()
        out = tempfile.mkdtemp(prefix="obs-bench-")
        try:
            t0 = time.perf_counter()
            with obs.observe(out, label="perf_bench"):
                observed = engine.standard_composite(
                    instructions=instructions, seed=seed)
            observed_runs.append(round(time.perf_counter() - t0, 3))
        finally:
            shutil.rmtree(out, ignore_errors=True)
        if plain.cycles != observed.cycles:
            raise SystemExit(
                f"observation perturbed the count: plain "
                f"{plain.cycles} vs observed {observed.cycles}")
    engine.clear_cache()
    best_plain = min(plain_runs)
    best_observed = min(observed_runs)
    return {
        "composite_cycles": plain.cycles,
        "plain_seconds": plain_runs,
        "best_plain_seconds": best_plain,
        "observed_seconds": observed_runs,
        "best_observed_seconds": best_observed,
        "overhead_fraction": round(best_observed / best_plain - 1, 4),
    }


def measure_batch(repeats: int) -> dict:
    """Pair a serial scalar sweep against the lockstep batch engine.

    The sweep is a 12-point measurement-window convergence study — one
    workload, the ``instructions`` axis from 2,000 to 24,000 — the
    shape the batch engine exists for: every point is a prefix of the
    longest run, so the batch engine fuses all twelve lanes onto one
    machine while the scalar engine pays for each point separately.
    Both sides run without a store (every point cold) and the records
    are required to match exactly (same cycles, same histogram
    digests) before a timing is accepted.

    Returns an empty dict when the measured tree predates the batch
    engine (the ``--label before`` baseline).
    """
    try:
        from repro.batch import plan_cohorts  # noqa: F401
    except ImportError:
        return {}
    from repro.explore import run_sweep
    from repro.explore.space import Axis, SweepSpec

    spec = SweepSpec(
        name="batch-bench",
        axes=(Axis("instructions", tuple(range(2_000, 24_001, 2_000))),),
        mode="ofat", instructions=2_000, seed=1984,
        workloads=("timesharing-research",))
    scalar_runs, batch_runs = [], []
    sweep_cycles = None
    points = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        scalar = run_sweep(spec, store=None, jobs=1, engine="scalar")
        scalar_runs.append(round(time.perf_counter() - t0, 3))
        t0 = time.perf_counter()
        batch = run_sweep(spec, store=None, jobs=1, engine="batch")
        batch_runs.append(round(time.perf_counter() - t0, 3))
        for a, b in zip(scalar.points, batch.points):
            if a["records"] != b["records"]:
                raise SystemExit(
                    f"scalar/batch records differ at {a['label']} — "
                    "timings are not comparable")
        cycles = sum(entry["composite"]["cycles"]
                     for entry in scalar.points)
        if sweep_cycles is None:
            sweep_cycles = cycles
            points = len(scalar.points)
        elif sweep_cycles != cycles:
            raise SystemExit(f"non-deterministic batch-bench cycles: "
                             f"{sweep_cycles} vs {cycles}")
    best_scalar = min(scalar_runs)
    best_batch = min(batch_runs)
    return {
        "spec": spec.name,
        "points": points,
        "instructions_axis": list(spec.axes[0].values),
        "sweep_cycles": sweep_cycles,
        "scalar_seconds": scalar_runs,
        "best_scalar_seconds": best_scalar,
        "batch_seconds": batch_runs,
        "best_batch_seconds": best_batch,
        "speedup": round(best_scalar / best_batch, 2),
    }


def measure_serve(repeats: int,
                  requests: int = 6, instructions: int = 1_500) -> dict:
    """Pair N duplicate service submissions against N scalar runs.

    The scalar side simulates the same characterize job ``requests``
    times on a cold memo (what N independent clients running the CLI
    themselves would pay).  The serve side submits the identical job
    ``requests`` times to a job server: the first submission simulates,
    every later one is answered from the shared content-addressed cache
    — so the comparison measures exactly what the service's dedup is
    worth, plus the warm per-request overhead (HTTP round trip + store
    read) that a cache hit costs.  Result documents are required to be
    bit-identical across the scalar run, the served run, and every
    cache hit before a timing is accepted.

    Returns an empty dict when the measured tree predates the serve
    subsystem (the ``--label before`` baseline).
    """
    try:
        from repro.serve.testing import ServerThread  # noqa: F401
    except ImportError:
        return {}
    import shutil
    import tempfile

    from repro import api
    from repro.serve import ServeConfig
    from repro.serve.testing import ServerThread
    from repro.workloads import engine

    params = {"instructions": instructions, "seed": 424_242,
              "table": "4"}
    scalar_runs, serve_runs = [], []
    warm_requests = []
    reference = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(requests):
            engine.clear_cache()
            doc = api.characterize(**params).to_json()
        scalar_runs.append(round(time.perf_counter() - t0, 3))
        if reference is None:
            reference = json.dumps(doc, sort_keys=True)
        elif json.dumps(doc, sort_keys=True) != reference:
            raise SystemExit("non-deterministic scalar characterize — "
                             "serve timings are not comparable")

        engine.clear_cache()
        root = tempfile.mkdtemp(prefix="serve-bench-")
        try:
            config = ServeConfig(store=os.path.join(root, "store"),
                                 workers=1, queue_size=requests + 1)
            with ServerThread(config) as handle:
                client = handle.client(name="perf-bench")
                t0 = time.perf_counter()
                jobs = [client.submit("characterize", params)
                        for _ in range(requests)]
                serve_runs.append(round(time.perf_counter() - t0, 3))
                for number, job in enumerate(jobs):
                    served = json.dumps(job["result"], sort_keys=True)
                    if served != reference:
                        raise SystemExit(
                            f"served result #{number} is not "
                            "bit-identical to the scalar run")
                if not all(job["cached"] for job in jobs[1:]):
                    raise SystemExit("later duplicates were not cache "
                                     "hits — dedup is broken")
                # Warm per-request cost, timed individually.
                for _ in range(3):
                    t0 = time.perf_counter_ns()
                    client.submit("characterize", params)
                    warm_requests.append(time.perf_counter_ns() - t0)
        finally:
            shutil.rmtree(root, ignore_errors=True)
    engine.clear_cache()
    best_scalar = min(scalar_runs)
    best_serve = min(serve_runs)
    return {
        "requests": requests,
        "instructions": instructions,
        "scalar_seconds": scalar_runs,
        "best_scalar_seconds": best_scalar,
        "serve_seconds": serve_runs,
        "best_serve_seconds": best_serve,
        "dedup_speedup": round(best_scalar / best_serve, 2),
        "warm_request_nanoseconds": warm_requests,
        "best_warm_request_seconds": round(min(warm_requests) / 1e9, 6),
    }


def measure_analytical(repeats: int, target: int = 6_000) -> dict:
    """Pair the analytical CPI tier against a full simulation.

    Calibrates one workload per machine at a scaled-down anchor
    envelope, then times (a) a cold simulator run at the target budget
    and (b) the calibrated mix's estimate at the same budget; the
    estimate must land inside the tier's recorded error bound against
    the simulation before a timing is accepted.  Calibration cost is
    reported separately — it amortizes over every budget the mix is
    asked about.  Returns an empty dict when the measured tree predates
    ``repro.machines`` (the ``--label before`` baseline).
    """
    try:
        from repro.machines import calibrate, check_estimate
    except ImportError:
        return {}
    from repro.workloads import engine
    from repro.workloads.profiles import STANDARD_PROFILES

    anchors = (1_000, 3_000, 5_000, 7_000, 9_000)
    workload = "rte-educational"
    profile = next(p for p in STANDARD_PROFILES if p.name == workload)
    machines = {}
    for machine in ("vax780", "uvax78032"):
        calib_runs, sim_runs, estimate_ns = [], [], []
        rel_err = None
        for _ in range(repeats):
            engine.clear_cache()
            t0 = time.perf_counter()
            mix = calibrate(profile, machine, anchors=anchors)
            calib_runs.append(round(time.perf_counter() - t0, 3))

            engine.clear_cache()
            t0 = time.perf_counter()
            engine.run_workload(profile, target, machine=machine)
            sim_runs.append(round(time.perf_counter() - t0, 3))

            check = check_estimate(mix, target)
            if not check["ok"]:
                raise SystemExit(
                    f"analytical estimate off by {check['rel_err']} on "
                    f"{workload}/{machine} — timings are not comparable")
            rel_err = check["rel_err"]
            for _ in range(5):
                t0 = time.perf_counter_ns()
                mix.estimate(target)
                estimate_ns.append(time.perf_counter_ns() - t0)
        best_sim = min(sim_runs)
        best_estimate = min(estimate_ns) / 1e9
        machines[machine] = {
            "calibration_seconds": calib_runs,
            "best_calibration_seconds": min(calib_runs),
            "simulation_seconds": sim_runs,
            "best_simulation_seconds": best_sim,
            "best_estimate_seconds": round(best_estimate, 9),
            "rel_err": rel_err,
            "speedup": round(best_sim / best_estimate, 1),
        }
    engine.clear_cache()
    return {
        "workload": workload,
        "instructions": target,
        "anchors": list(anchors),
        "machines": machines,
    }


#: (label, path to the before/after seconds inside an entry) pairs the
#: speedup block reports; ratios are before/after, > 1 means faster.
_SPEEDUP_SECTIONS = (
    ("composite", ("best_seconds",)),
    ("ubench", ("ubench", "best_seconds")),
    ("explore_cold", ("explore", "best_cold_seconds")),
    ("explore_warm", ("explore", "best_warm_seconds")),
    ("obs_plain", ("obs", "best_plain_seconds")),
    ("serve_warm", ("serve", "best_warm_request_seconds")),
)


def _dig(entry: dict, path: tuple):
    value = entry
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def speedups(before: dict, after: dict) -> dict:
    """Per-section before/after wall-clock ratios (> 1 = faster)."""
    out = {}
    for label, path in _SPEEDUP_SECTIONS:
        a, b = _dig(before, path), _dig(after, path)
        if a and b:
            out[label] = round(a / b, 2)
    return out


def _source_id() -> str:
    src = os.environ.get("REPRO_SRC", os.path.join(REPO, "src"))
    tree = os.path.dirname(os.path.abspath(src)) or REPO
    try:
        rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=tree, capture_output=True, text=True)
        if rev.returncode == 0:
            dirty = subprocess.run(["git", "status", "--porcelain"],
                                   cwd=tree, capture_output=True, text=True)
            suffix = "-dirty" if dirty.stdout.strip() else ""
            return rev.stdout.strip() + suffix
    except OSError:
        pass
    return "unknown"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instructions", type=int, default=60_000,
                        help="measured instructions per workload")
    parser.add_argument("--seed", type=int, default=1984)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (results identical)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions; best is reported")
    parser.add_argument("--label", default="after",
                        choices=("before", "after"),
                        help="which entry of the JSON to write")
    parser.add_argument("--output", default=None,
                        help="JSON file to update (e.g. BENCH_perf.json)")
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    if args.instructions < 1:
        parser.error("--instructions must be at least 1")

    entry = measure(args.instructions, args.seed, args.jobs, args.repeats)
    print(f"[{args.label}] composite of 5 x {args.instructions}: "
          f"best {entry['best_seconds']:.2f}s of {entry['wall_seconds']}  "
          f"{entry['instructions_per_second']:,.0f} instr/s  "
          f"{entry['cycles_per_second']:,.0f} cycles/s  "
          f"cycles={entry['composite_cycles']}")
    ub = entry["ubench"]
    print(f"[{args.label}] ubench sweep of {ub['kernels']} kernels: "
          f"best {ub['best_seconds']:.2f}s  "
          f"{ub['kernels_per_second']:.1f} kernels/s  "
          f"cycles={ub['sweep_cycles']}")
    ex = entry["explore"]
    print(f"[{args.label}] explore smoke sweep of {ex['tasks']} tasks: "
          f"cold {ex['best_cold_seconds']:.2f}s  "
          f"warm {ex['best_warm_seconds']:.2f}s  "
          f"cycles={ex['sweep_cycles']}")
    ob = entry["obs"]
    print(f"[{args.label}] obs overhead on the composite: plain "
          f"{ob['best_plain_seconds']:.2f}s  observed "
          f"{ob['best_observed_seconds']:.2f}s  "
          f"overhead {ob['overhead_fraction'] * 100:+.2f}%")
    ba = entry["batch"]
    if ba:
        print(f"[{args.label}] batch engine on a {ba['points']}-point "
              f"instructions sweep: scalar "
              f"{ba['best_scalar_seconds']:.2f}s  batch "
              f"{ba['best_batch_seconds']:.2f}s  "
              f"speedup {ba['speedup']:.2f}x  "
              f"cycles={ba['sweep_cycles']}")
    sv = entry["serve"]
    if sv:
        print(f"[{args.label}] serve dedup on {sv['requests']} "
              f"duplicate submissions: scalar "
              f"{sv['best_scalar_seconds']:.2f}s  served "
              f"{sv['best_serve_seconds']:.2f}s  "
              f"dedup speedup {sv['dedup_speedup']:.2f}x  warm request "
              f"{sv['best_warm_request_seconds'] * 1000:.1f}ms")
    an = entry["analytical"]
    if an:
        for machine, row in an["machines"].items():
            print(f"[{args.label}] analytical tier on "
                  f"{an['workload']}/{machine}: sim "
                  f"{row['best_simulation_seconds']:.2f}s  estimate "
                  f"{row['best_estimate_seconds'] * 1e6:.1f}us  "
                  f"speedup {row['speedup']:,.0f}x  "
                  f"rel_err {row['rel_err']:.4f}")

    if args.output:
        doc = {}
        if os.path.exists(args.output):
            try:
                with open(args.output) as fh:
                    doc = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"{args.output} exists but is not valid JSON ({exc}); "
                    "move it aside or pass a different --output")
        doc[args.label] = entry
        if entry["batch"]:
            # The paired scalar-vs-batch sweep timing, surfaced at the
            # top level (both sides run on the measured tree, so it
            # needs no before entry to be meaningful).
            doc["batch"] = entry["batch"]
        if entry["serve"]:
            # Likewise paired on the measured tree: N duplicate
            # submissions vs N scalar runs.
            doc["serve"] = entry["serve"]
        if entry["analytical"]:
            # Paired on the measured tree: the analytical tier's
            # estimate vs a cold simulation at the same budget.
            doc["analytical"] = entry["analytical"]
        before, after = doc.get("before"), doc.get("after")
        if before and after:
            if before["composite_cycles"] != after["composite_cycles"]:
                raise SystemExit(
                    "before/after disagree on counted cycles "
                    f"({before['composite_cycles']} vs "
                    f"{after['composite_cycles']}) — not comparable")
            doc["speedup"] = round(before["best_seconds"]
                                   / after["best_seconds"], 2)
            doc["speedups"] = speedups(before, after)
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}"
              + (f" (speedup {doc['speedup']}x)" if "speedup" in doc
                 else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
