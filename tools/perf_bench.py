#!/usr/bin/env python
"""End-to-end simulator performance benchmark.

Times the five-workload standard composite (construction + run +
capture, nothing cached) plus the fixed microbenchmark smoke sweep, and
writes/updates ``BENCH_perf.json`` with instructions/second and
cycles/second.  The composite's counted cycles
are recorded alongside so a perf number can never silently ride on a
timing-model change: two entries are comparable only if their
``composite_cycles`` match.

Usage:
    python tools/perf_bench.py                    # measure, print
    python tools/perf_bench.py --output BENCH_perf.json --label after
    REPRO_SRC=/path/to/other/src python tools/perf_bench.py --label before

``REPRO_SRC`` points the measurement at another source tree (e.g. a git
worktree of the baseline commit) so before/after are produced by the
same protocol on the same host, back to back.

The JSON accumulates one entry per label plus a ``speedup`` block
computed from ``before``/``after`` when both are present.
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.environ.get("REPRO_SRC", os.path.join(REPO, "src")))


def measure(instructions: int, seed: int, jobs: int, repeats: int) -> dict:
    from repro.workloads import engine

    runs = []
    cycles = None
    for _ in range(repeats):
        engine.clear_cache()
        kwargs = {"jobs": jobs} if jobs != 1 else {}
        t0 = time.perf_counter()
        meas = engine.standard_composite(instructions=instructions,
                                              seed=seed, **kwargs)
        elapsed = time.perf_counter() - t0
        runs.append(round(elapsed, 3))
        if cycles is None:
            cycles = meas.cycles
        elif cycles != meas.cycles:
            raise SystemExit(f"non-deterministic cycle count: "
                             f"{cycles} vs {meas.cycles}")
    best = min(runs)
    total_instructions = instructions * 5
    return {
        "instructions_per_workload": instructions,
        "total_instructions": total_instructions,
        "seed": seed,
        "jobs": jobs,
        "composite_cycles": cycles,
        "wall_seconds": runs,
        "best_seconds": best,
        "instructions_per_second": round(total_instructions / best, 1),
        "cycles_per_second": round(cycles / best, 1),
        "python": platform.python_version(),
        "source": _source_id(),
        "ubench": measure_ubench(repeats),
        "explore": measure_explore(repeats),
        "obs": measure_obs(instructions, seed, repeats),
    }


def measure_ubench(repeats: int) -> dict:
    """Time the fixed microbenchmark smoke sweep (serial, no pool).

    Like ``composite_cycles`` above, the sweep's summed cycle count is
    recorded so before/after entries are only comparable when the
    kernels counted the same work.
    """
    from repro.ubench import runner, suite

    runs = []
    total_cycles = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        results = runner.run_suite(suite.SMOKE_SUITE, jobs=1)
        elapsed = time.perf_counter() - t0
        runs.append(round(elapsed, 3))
        cycles = sum(r["total_cycles"] for r in results)
        if total_cycles is None:
            total_cycles = cycles
        elif total_cycles != cycles:
            raise SystemExit(f"non-deterministic ubench cycles: "
                             f"{total_cycles} vs {cycles}")
    best = min(runs)
    return {
        "kernels": len(suite.SMOKE_SUITE),
        "sweep_cycles": total_cycles,
        "wall_seconds": runs,
        "best_seconds": best,
        "kernels_per_second": round(len(suite.SMOKE_SUITE) / best, 2),
    }


def measure_explore(repeats: int) -> dict:
    """Time the smoke design-space sweep, cold store vs. warm store.

    Cold measures simulation + store writes; warm measures pure store
    reads and must perform zero new simulations.  The summed composite
    cycles across all points are recorded for the usual comparability
    check.
    """
    import shutil
    import tempfile

    from repro.explore import SMOKE, ResultStore, run_sweep

    cold_runs, warm_runs = [], []
    sweep_cycles = None
    stats = None
    for _ in range(repeats):
        root = tempfile.mkdtemp(prefix="explore-bench-")
        try:
            store = ResultStore(root)
            t0 = time.perf_counter()
            cold = run_sweep(SMOKE, store=store, jobs=1)
            cold_runs.append(round(time.perf_counter() - t0, 3))
            t0 = time.perf_counter()
            warm = run_sweep(SMOKE, store=store, jobs=1)
            warm_runs.append(round(time.perf_counter() - t0, 3))
            if warm.stats["simulated"]:
                raise SystemExit(
                    f"warm sweep re-simulated "
                    f"{warm.stats['simulated']} tasks")
            cycles = sum(entry["composite"]["cycles"]
                         for entry in cold.points)
            if sweep_cycles is None:
                sweep_cycles = cycles
                stats = cold.stats
            elif sweep_cycles != cycles:
                raise SystemExit(f"non-deterministic explore cycles: "
                                 f"{sweep_cycles} vs {cycles}")
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return {
        "spec": SMOKE.name,
        "points": stats["points"],
        "tasks": stats["tasks"],
        "sweep_cycles": sweep_cycles,
        "cold_seconds": cold_runs,
        "best_cold_seconds": min(cold_runs),
        "warm_seconds": warm_runs,
        "best_warm_seconds": min(warm_runs),
    }


def measure_obs(instructions: int, seed: int, repeats: int) -> dict:
    """Pair the composite with and without an active observation.

    The observability layer contracts to be passive: counted cycles must
    be bit-identical and the wall-clock overhead small (the adaptive
    progress sampler backs off until it is).  Each repeat times the two
    variants back to back on a cold memo cache; the overhead fraction is
    best-observed over best-plain minus one.
    """
    import shutil
    import tempfile

    from repro import obs
    from repro.workloads import engine

    plain_runs, observed_runs = [], []
    for _ in range(repeats):
        engine.clear_cache()
        t0 = time.perf_counter()
        plain = engine.standard_composite(instructions=instructions,
                                          seed=seed)
        plain_runs.append(round(time.perf_counter() - t0, 3))

        engine.clear_cache()
        out = tempfile.mkdtemp(prefix="obs-bench-")
        try:
            t0 = time.perf_counter()
            with obs.observe(out, label="perf_bench"):
                observed = engine.standard_composite(
                    instructions=instructions, seed=seed)
            observed_runs.append(round(time.perf_counter() - t0, 3))
        finally:
            shutil.rmtree(out, ignore_errors=True)
        if plain.cycles != observed.cycles:
            raise SystemExit(
                f"observation perturbed the count: plain "
                f"{plain.cycles} vs observed {observed.cycles}")
    engine.clear_cache()
    best_plain = min(plain_runs)
    best_observed = min(observed_runs)
    return {
        "composite_cycles": plain.cycles,
        "plain_seconds": plain_runs,
        "best_plain_seconds": best_plain,
        "observed_seconds": observed_runs,
        "best_observed_seconds": best_observed,
        "overhead_fraction": round(best_observed / best_plain - 1, 4),
    }


def _source_id() -> str:
    src = os.environ.get("REPRO_SRC", os.path.join(REPO, "src"))
    tree = os.path.dirname(os.path.abspath(src)) or REPO
    try:
        rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=tree, capture_output=True, text=True)
        if rev.returncode == 0:
            dirty = subprocess.run(["git", "status", "--porcelain"],
                                   cwd=tree, capture_output=True, text=True)
            suffix = "-dirty" if dirty.stdout.strip() else ""
            return rev.stdout.strip() + suffix
    except OSError:
        pass
    return "unknown"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instructions", type=int, default=60_000,
                        help="measured instructions per workload")
    parser.add_argument("--seed", type=int, default=1984)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (results identical)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions; best is reported")
    parser.add_argument("--label", default="after",
                        choices=("before", "after"),
                        help="which entry of the JSON to write")
    parser.add_argument("--output", default=None,
                        help="JSON file to update (e.g. BENCH_perf.json)")
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    if args.instructions < 1:
        parser.error("--instructions must be at least 1")

    entry = measure(args.instructions, args.seed, args.jobs, args.repeats)
    print(f"[{args.label}] composite of 5 x {args.instructions}: "
          f"best {entry['best_seconds']:.2f}s of {entry['wall_seconds']}  "
          f"{entry['instructions_per_second']:,.0f} instr/s  "
          f"{entry['cycles_per_second']:,.0f} cycles/s  "
          f"cycles={entry['composite_cycles']}")
    ub = entry["ubench"]
    print(f"[{args.label}] ubench sweep of {ub['kernels']} kernels: "
          f"best {ub['best_seconds']:.2f}s  "
          f"{ub['kernels_per_second']:.1f} kernels/s  "
          f"cycles={ub['sweep_cycles']}")
    ex = entry["explore"]
    print(f"[{args.label}] explore smoke sweep of {ex['tasks']} tasks: "
          f"cold {ex['best_cold_seconds']:.2f}s  "
          f"warm {ex['best_warm_seconds']:.2f}s  "
          f"cycles={ex['sweep_cycles']}")
    ob = entry["obs"]
    print(f"[{args.label}] obs overhead on the composite: plain "
          f"{ob['best_plain_seconds']:.2f}s  observed "
          f"{ob['best_observed_seconds']:.2f}s  "
          f"overhead {ob['overhead_fraction'] * 100:+.2f}%")

    if args.output:
        doc = {}
        if os.path.exists(args.output):
            try:
                with open(args.output) as fh:
                    doc = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"{args.output} exists but is not valid JSON ({exc}); "
                    "move it aside or pass a different --output")
        doc[args.label] = entry
        before, after = doc.get("before"), doc.get("after")
        if before and after:
            if before["composite_cycles"] != after["composite_cycles"]:
                raise SystemExit(
                    "before/after disagree on counted cycles "
                    f"({before['composite_cycles']} vs "
                    f"{after['composite_cycles']}) — not comparable")
            doc["speedup"] = round(before["best_seconds"]
                                   / after["best_seconds"], 2)
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}"
              + (f" (speedup {doc['speedup']}x)" if "speedup" in doc
                 else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
