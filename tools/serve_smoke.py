#!/usr/bin/env python3
"""CI smoke for the job server: dedup, cache hits, clean SIGTERM drain.

Starts ``python -m repro serve`` as a real subprocess (with ``--obs``
so the run leaves a metrics.json artifact), then drives it over HTTP:

1. submit a smoke characterize job and wait for the result;
2. submit the identical job again — it must come back as a cache hit
   with a bit-identical result document;
3. submit one more (distinct) job without waiting, send ``SIGTERM``,
   and require the server to drain: exit code 0, the pending job's
   record present in the store, nothing lost.

Exits non-zero with a diagnostic on the first violated expectation.

Usage::

    python tools/serve_smoke.py [--obs-dir serve-obs] [--keep]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
sys.path.insert(0, SRC)


def fail(message: str) -> None:
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_server(store: str, obs_dir: str) -> tuple:
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store", store, "--obs", obs_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    deadline = time.monotonic() + 60
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            return proc, line.strip().rsplit(" ", 1)[-1]
        if not line or time.monotonic() > deadline:
            proc.kill()
            fail(f"server did not come up (last line: {line!r})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--obs-dir", default="serve-obs",
                        help="observability artifact directory "
                             "(uploaded by CI)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch store directory")
    args = parser.parse_args()

    from repro.explore.store import ResultStore
    from repro.serve.client import ServeClient, ServeError

    scratch = tempfile.mkdtemp(prefix="serve-smoke-")
    store = os.path.join(scratch, "store")
    proc, url = start_server(store, args.obs_dir)
    print(f"serve_smoke: server at {url}, store {store}")

    params = {"smoke": True, "table": "4", "seed": 417}
    try:
        client = ServeClient(url=url, name="serve-smoke")

        first = client.submit("characterize", params)
        if first["cached"]:
            fail("first submission must simulate, not hit the cache")
        print(f"serve_smoke: first run done in {first['seconds']}s")

        second = client.submit("characterize", params)
        if not second["cached"]:
            fail("identical resubmission was not served from the cache")
        a = json.dumps(first["result"], sort_keys=True)
        b = json.dumps(second["result"], sort_keys=True)
        if a != b:
            fail("cached result is not bit-identical to the first run")
        print("serve_smoke: resubmission was a bit-identical cache hit")

        doc = client.metrics()
        if doc["cache"]["hits"] != 1 or doc["cache"]["misses"] != 1:
            fail(f"unexpected cache counters: {doc['cache']}")

        pending = client.submit(
            "characterize",
            {"smoke": True, "table": "4", "seed": 418}, wait=False)
        print(f"serve_smoke: queued {pending['id']}, sending SIGTERM")
    except ServeError as exc:
        proc.kill()
        fail(f"server interaction failed: {exc}")

    proc.send_signal(signal.SIGTERM)
    try:
        output, _ = proc.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("server did not exit within 120s of SIGTERM")
    if proc.returncode != 0:
        fail(f"server exited {proc.returncode} after SIGTERM:\n{output}")
    if "drained and stopped" not in output:
        fail(f"server never reported a drain:\n{output}")

    stats = ResultStore(store).stats()
    if stats["entries"] != 2:
        fail(f"expected 2 persisted records (one per distinct job), "
             f"got {stats}")
    print(f"serve_smoke: drain kept all work: store stats {stats}")

    metrics_path = os.path.join(args.obs_dir, "metrics.json")
    if not os.path.exists(metrics_path):
        fail(f"server left no {metrics_path} (obs artifact)")
    snapshot = json.load(open(metrics_path))
    flat = json.dumps(snapshot)
    if "serve.jobs.executed" not in flat:
        fail("metrics.json has no serve counters")
    print(f"serve_smoke: obs artifact ok: {metrics_path}")

    if not args.keep:
        shutil.rmtree(scratch, ignore_errors=True)
    print("serve_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
